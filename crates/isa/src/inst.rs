//! The modelled (non-branching) instruction set.
//!
//! Instructions appear in the body of a basic block; control transfers are
//! expressed by the block [`Terminator`](crate::Terminator) instead, because
//! the flash/RAM placement optimization only ever rewrites terminators.
//!
//! Every instruction knows its encoding size in bytes (16-bit or 32-bit
//! Thumb-2 encodings, with a pseudo 8-byte `movw`/`movt` pair for full 32-bit
//! constants) and its base cycle cost on a Cortex-M3-class pipeline.  The
//! extra cycles that appear when code executes from RAM and performs loads
//! (bus contention, the paper's `L_b` parameter) are *not* part of the base
//! cost; they are added by the memory system model in `flashram-mcu`.

use std::fmt;

use crate::reg::Reg;

/// Identifier of a data symbol (global variable or constant table) in the
/// program's symbol table.
///
/// The actual table lives in the machine-level program representation
/// (`flashram-ir`); the ISA layer only needs an opaque handle so that
/// address-forming instructions can refer to data whose final address is
/// assigned by the linker/layout stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(pub u32);

impl fmt::Display for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Width of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 8-bit access (`ldrb`/`strb`).
    Byte,
    /// 16-bit access (`ldrh`/`strh`).
    Half,
    /// 32-bit access (`ldr`/`str`).
    Word,
}

impl MemWidth {
    /// Number of bytes transferred.
    #[inline]
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
        }
    }
}

/// Shift operations available to the barrel shifter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// Logical shift left.
    Lsl,
    /// Logical shift right.
    Lsr,
    /// Arithmetic shift right.
    Asr,
}

/// The value loaded by a literal-pool load (`ldr rd, =value`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LitValue {
    /// A plain 32-bit constant.
    Const(i32),
    /// The address of a data symbol, resolved at layout time.
    Symbol(SymbolId),
}

impl fmt::Display for LitValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LitValue::Const(c) => write!(f, "#{c}"),
            LitValue::Symbol(s) => write!(f, "={s}"),
        }
    }
}

/// Coarse instruction classes used by the power model.
///
/// Figure 1 of the paper reports a different average power for stores, loads,
/// ALU operations, no-ops and branches depending on the memory the code
/// executes from (and, for loads, the memory being read).  The simulator maps
/// every executed instruction to one of these classes to pick its power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Data-processing (add/sub/logic/shift/compare/move).
    Alu,
    /// Single-cycle multiply.
    Mul,
    /// Multi-cycle divide.
    Div,
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// Stack push/pop (modelled as a memory burst).
    Stack,
    /// `nop`.
    Nop,
    /// Procedure call (`bl`).
    Call,
    /// Control transfer at the end of a block.
    Branch,
}

/// A straight-line machine instruction.
///
/// All operands are physical registers: the code generator in
/// `flashram-minicc` performs register allocation before emitting these.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `nop`
    Nop,
    /// `mov rd, #imm` (widening to `movw`/`movt` as required).
    MovImm {
        /// Destination.
        rd: Reg,
        /// Constant value.
        imm: i32,
    },
    /// `mov rd, rm`
    MovReg {
        /// Destination.
        rd: Reg,
        /// Source.
        rm: Reg,
    },
    /// `it <cond>; mov<cond> rd, #imm` — a conditional move under a one-deep
    /// IT block, used to materialize comparison results without a branch.
    MovCond {
        /// Condition under which the move happens.
        cond: crate::cond::Cond,
        /// Destination.
        rd: Reg,
        /// Value moved when the condition holds.
        imm: i32,
    },
    /// `ldr rd, =value` — literal-pool load of a constant or symbol address.
    LdrLit {
        /// Destination.
        rd: Reg,
        /// The literal.
        value: LitValue,
    },
    /// `add rd, rn, #imm`
    AddImm {
        /// Destination.
        rd: Reg,
        /// First operand.
        rn: Reg,
        /// Immediate second operand.
        imm: i32,
    },
    /// `add rd, rn, rm`
    AddReg {
        /// Destination.
        rd: Reg,
        /// First operand.
        rn: Reg,
        /// Second operand.
        rm: Reg,
    },
    /// `sub rd, rn, #imm`
    SubImm {
        /// Destination.
        rd: Reg,
        /// First operand.
        rn: Reg,
        /// Immediate second operand.
        imm: i32,
    },
    /// `sub rd, rn, rm`
    SubReg {
        /// Destination.
        rd: Reg,
        /// First operand.
        rn: Reg,
        /// Second operand.
        rm: Reg,
    },
    /// `rsb rd, rn, #imm` — reverse subtract, used for negation.
    RsbImm {
        /// Destination.
        rd: Reg,
        /// Operand subtracted from the immediate.
        rn: Reg,
        /// Immediate minuend.
        imm: i32,
    },
    /// `mul rd, rn, rm`
    Mul {
        /// Destination.
        rd: Reg,
        /// First operand.
        rn: Reg,
        /// Second operand.
        rm: Reg,
    },
    /// `sdiv rd, rn, rm`
    Sdiv {
        /// Destination.
        rd: Reg,
        /// Dividend.
        rn: Reg,
        /// Divisor.
        rm: Reg,
    },
    /// `udiv rd, rn, rm`
    Udiv {
        /// Destination.
        rd: Reg,
        /// Dividend.
        rn: Reg,
        /// Divisor.
        rm: Reg,
    },
    /// `and rd, rn, rm`
    And {
        /// Destination.
        rd: Reg,
        /// First operand.
        rn: Reg,
        /// Second operand.
        rm: Reg,
    },
    /// `orr rd, rn, rm`
    Orr {
        /// Destination.
        rd: Reg,
        /// First operand.
        rn: Reg,
        /// Second operand.
        rm: Reg,
    },
    /// `eor rd, rn, rm`
    Eor {
        /// Destination.
        rd: Reg,
        /// First operand.
        rn: Reg,
        /// Second operand.
        rm: Reg,
    },
    /// `bic rd, rn, rm`
    Bic {
        /// Destination.
        rd: Reg,
        /// First operand.
        rn: Reg,
        /// Second operand (cleared bits).
        rm: Reg,
    },
    /// `mvn rd, rm`
    Mvn {
        /// Destination.
        rd: Reg,
        /// Source to complement.
        rm: Reg,
    },
    /// `and rd, rn, #imm`
    AndImm {
        /// Destination.
        rd: Reg,
        /// First operand.
        rn: Reg,
        /// Mask.
        imm: i32,
    },
    /// `orr rd, rn, #imm`
    OrrImm {
        /// Destination.
        rd: Reg,
        /// First operand.
        rn: Reg,
        /// Bits to set.
        imm: i32,
    },
    /// `eor rd, rn, #imm`
    EorImm {
        /// Destination.
        rd: Reg,
        /// First operand.
        rn: Reg,
        /// Bits to toggle.
        imm: i32,
    },
    /// Shift by an immediate amount (`lsl`/`lsr`/`asr rd, rm, #imm`).
    ShiftImm {
        /// Which shift.
        op: ShiftOp,
        /// Destination.
        rd: Reg,
        /// Value to shift.
        rm: Reg,
        /// Shift amount (0–31).
        imm: u8,
    },
    /// Shift by a register amount (`lsl`/`lsr`/`asr rd, rn, rm`).
    ShiftReg {
        /// Which shift.
        op: ShiftOp,
        /// Destination.
        rd: Reg,
        /// Value to shift.
        rn: Reg,
        /// Register holding the shift amount.
        rm: Reg,
    },
    /// `cmp rn, #imm`
    CmpImm {
        /// Left operand.
        rn: Reg,
        /// Immediate right operand.
        imm: i32,
    },
    /// `cmp rn, rm`
    CmpReg {
        /// Left operand.
        rn: Reg,
        /// Right operand.
        rm: Reg,
    },
    /// `ldr/ldrh/ldrb rd, [base, #offset]`
    Load {
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i32,
        /// Access width.
        width: MemWidth,
    },
    /// `str/strh/strb rs, [base, #offset]`
    Store {
        /// Value to store.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i32,
        /// Access width.
        width: MemWidth,
    },
    /// `ldr rd, [base, index]` — register-offset load used for array indexing.
    LoadIdx {
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Index register (byte offset).
        index: Reg,
        /// Access width.
        width: MemWidth,
    },
    /// `str rs, [base, index]` — register-offset store.
    StoreIdx {
        /// Value to store.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Index register (byte offset).
        index: Reg,
        /// Access width.
        width: MemWidth,
    },
    /// `push {regs}`
    Push {
        /// Registers pushed, in ascending order.
        regs: Vec<Reg>,
    },
    /// `pop {regs}`
    Pop {
        /// Registers popped, in ascending order.
        regs: Vec<Reg>,
    },
    /// `add sp, sp, #delta` / `sub sp, sp, #-delta`.
    AddSp {
        /// Signed adjustment in bytes (negative grows the frame).
        delta: i32,
    },
    /// `bl <function>` — call the function with the given program-level index.
    ///
    /// Function indices are assigned by the machine program container in
    /// `flashram-ir`; they are not [`SymbolId`]s (those name data).
    Bl {
        /// Callee function index.
        callee: u32,
    },
}

impl Inst {
    /// Encoding size in bytes.
    ///
    /// 16-bit encodings are used where a real Thumb-2 assembler could pick
    /// one (low registers, small immediates); otherwise the 32-bit encoding
    /// is assumed.  `mov` of a full 32-bit constant is modelled as the
    /// `movw`+`movt` pair (8 bytes).  Literal-pool loads are charged 4 bytes
    /// to account for the pool entry.
    pub fn size_bytes(&self) -> u32 {
        use Inst::*;
        match self {
            Nop => 2,
            MovImm { rd, imm } => {
                if rd.is_low() && (0..=255).contains(imm) {
                    2
                } else if (-(1 << 15)..(1 << 16)).contains(imm) {
                    4
                } else {
                    8
                }
            }
            MovReg { .. } => 2,
            MovCond { imm, .. } => {
                // 2-byte IT plus a narrow or wide MOV.
                if (0..=255).contains(imm) {
                    4
                } else {
                    6
                }
            }
            LdrLit { .. } => 4,
            AddImm { rd, rn, imm } | SubImm { rd, rn, imm } => {
                let three_reg_form = rd.is_low() && rn.is_low() && (0..=7).contains(imm);
                let two_reg_form = rd == rn && rd.is_low() && (0..=255).contains(imm);
                if three_reg_form || two_reg_form {
                    2
                } else {
                    4
                }
            }
            RsbImm { rd, rn, imm } => {
                if rd.is_low() && rn.is_low() && *imm == 0 {
                    2
                } else {
                    4
                }
            }
            AddReg { rd, rn, rm } | SubReg { rd, rn, rm } => {
                if rd.is_low() && rn.is_low() && rm.is_low() {
                    2
                } else {
                    4
                }
            }
            Mul { rd, rn, rm } => {
                if rd.is_low() && rn.is_low() && rm.is_low() && rd == rn {
                    2
                } else {
                    4
                }
            }
            Sdiv { .. } | Udiv { .. } => 4,
            And { rd, rn, rm } | Orr { rd, rn, rm } | Eor { rd, rn, rm } | Bic { rd, rn, rm } => {
                if rd.is_low() && rn.is_low() && rm.is_low() && rd == rn {
                    2
                } else {
                    4
                }
            }
            Mvn { rd, rm } => {
                if rd.is_low() && rm.is_low() {
                    2
                } else {
                    4
                }
            }
            AndImm { .. } | OrrImm { .. } | EorImm { .. } => 4,
            ShiftImm { rd, rm, .. } => {
                if rd.is_low() && rm.is_low() {
                    2
                } else {
                    4
                }
            }
            ShiftReg { rd, rn, rm, .. } => {
                if rd.is_low() && rn.is_low() && rm.is_low() && rd == rn {
                    2
                } else {
                    4
                }
            }
            CmpImm { rn, imm } => {
                if rn.is_low() && (0..=255).contains(imm) {
                    2
                } else {
                    4
                }
            }
            CmpReg { .. } => 2,
            Load {
                rd,
                base,
                offset,
                width,
            } => mem_size(*rd, *base, *offset, *width),
            Store {
                rs,
                base,
                offset,
                width,
            } => mem_size(*rs, *base, *offset, *width),
            LoadIdx {
                rd, base, index, ..
            } => {
                if rd.is_low() && base.is_low() && index.is_low() {
                    2
                } else {
                    4
                }
            }
            StoreIdx {
                rs, base, index, ..
            } => {
                if rs.is_low() && base.is_low() && index.is_low() {
                    2
                } else {
                    4
                }
            }
            Push { regs } | Pop { regs } => {
                if regs
                    .iter()
                    .all(|r| r.is_low() || *r == Reg::Lr || *r == Reg::Pc)
                {
                    2
                } else {
                    4
                }
            }
            AddSp { delta } => {
                if delta.unsigned_abs() <= 508 {
                    2
                } else {
                    4
                }
            }
            Bl { .. } => 4,
        }
    }

    /// Base cycle cost on the modelled Cortex-M3-class pipeline, assuming the
    /// zero-wait-state operation typical of these parts at low clock rates.
    ///
    /// Memory-contention stalls (executing a load from RAM while fetching
    /// from RAM) are added separately by the simulator, mirroring the `L_b`
    /// term of the paper's model.
    pub fn base_cycles(&self) -> u64 {
        use Inst::*;
        match self {
            Nop
            | MovImm { .. }
            | MovReg { .. }
            | AddImm { .. }
            | AddReg { .. }
            | MovCond { .. }
            | SubImm { .. }
            | SubReg { .. }
            | RsbImm { .. }
            | And { .. }
            | Orr { .. }
            | Eor { .. }
            | Bic { .. }
            | Mvn { .. }
            | AndImm { .. }
            | OrrImm { .. }
            | EorImm { .. }
            | ShiftImm { .. }
            | ShiftReg { .. }
            | CmpImm { .. }
            | CmpReg { .. }
            | AddSp { .. } => 1,
            Mul { .. } => 1,
            Sdiv { .. } | Udiv { .. } => 6,
            LdrLit { .. } | Load { .. } | LoadIdx { .. } => 2,
            Store { .. } | StoreIdx { .. } => 2,
            Push { regs } | Pop { regs } => 1 + regs.len() as u64,
            Bl { .. } => 4,
        }
    }

    /// The class of the instruction, for the power model.
    pub fn class(&self) -> InstClass {
        use Inst::*;
        match self {
            Nop => InstClass::Nop,
            Mul { .. } => InstClass::Mul,
            Sdiv { .. } | Udiv { .. } => InstClass::Div,
            LdrLit { .. } | Load { .. } | LoadIdx { .. } => InstClass::Load,
            Store { .. } | StoreIdx { .. } => InstClass::Store,
            Push { .. } | Pop { .. } => InstClass::Stack,
            Bl { .. } => InstClass::Call,
            _ => InstClass::Alu,
        }
    }

    /// Whether the instruction reads data memory.
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::LoadIdx { .. } | Inst::LdrLit { .. } | Inst::Pop { .. }
        )
    }

    /// Whether the instruction writes data memory.
    pub fn is_store(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. } | Inst::StoreIdx { .. } | Inst::Push { .. }
        )
    }

    /// Whether the instruction is a procedure call.
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Bl { .. })
    }
}

fn mem_size(data: Reg, base: Reg, offset: i32, width: MemWidth) -> u32 {
    let max16 = match width {
        MemWidth::Word => 124,
        MemWidth::Half => 62,
        MemWidth::Byte => 31,
    };
    let sp_form = base == Reg::Sp && width == MemWidth::Word && (0..=1020).contains(&offset);
    let reg_form = base.is_low() && (0..=max16).contains(&offset);
    if data.is_low() && (sp_form || reg_form) {
        2
    } else {
        4
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Inst::*;
        let shift_name = |op: &ShiftOp| match op {
            ShiftOp::Lsl => "lsl",
            ShiftOp::Lsr => "lsr",
            ShiftOp::Asr => "asr",
        };
        let width_suffix = |w: &MemWidth| match w {
            MemWidth::Byte => "b",
            MemWidth::Half => "h",
            MemWidth::Word => "",
        };
        match self {
            Nop => write!(f, "nop"),
            MovImm { rd, imm } => write!(f, "mov {rd}, #{imm}"),
            MovReg { rd, rm } => write!(f, "mov {rd}, {rm}"),
            MovCond { cond, rd, imm } => write!(f, "it {cond} ; mov{cond} {rd}, #{imm}"),
            LdrLit { rd, value } => write!(f, "ldr {rd}, {value}"),
            AddImm { rd, rn, imm } => write!(f, "add {rd}, {rn}, #{imm}"),
            AddReg { rd, rn, rm } => write!(f, "add {rd}, {rn}, {rm}"),
            SubImm { rd, rn, imm } => write!(f, "sub {rd}, {rn}, #{imm}"),
            SubReg { rd, rn, rm } => write!(f, "sub {rd}, {rn}, {rm}"),
            RsbImm { rd, rn, imm } => write!(f, "rsb {rd}, {rn}, #{imm}"),
            Mul { rd, rn, rm } => write!(f, "mul {rd}, {rn}, {rm}"),
            Sdiv { rd, rn, rm } => write!(f, "sdiv {rd}, {rn}, {rm}"),
            Udiv { rd, rn, rm } => write!(f, "udiv {rd}, {rn}, {rm}"),
            And { rd, rn, rm } => write!(f, "and {rd}, {rn}, {rm}"),
            Orr { rd, rn, rm } => write!(f, "orr {rd}, {rn}, {rm}"),
            Eor { rd, rn, rm } => write!(f, "eor {rd}, {rn}, {rm}"),
            Bic { rd, rn, rm } => write!(f, "bic {rd}, {rn}, {rm}"),
            Mvn { rd, rm } => write!(f, "mvn {rd}, {rm}"),
            AndImm { rd, rn, imm } => write!(f, "and {rd}, {rn}, #{imm}"),
            OrrImm { rd, rn, imm } => write!(f, "orr {rd}, {rn}, #{imm}"),
            EorImm { rd, rn, imm } => write!(f, "eor {rd}, {rn}, #{imm}"),
            ShiftImm { op, rd, rm, imm } => write!(f, "{} {rd}, {rm}, #{imm}", shift_name(op)),
            ShiftReg { op, rd, rn, rm } => write!(f, "{} {rd}, {rn}, {rm}", shift_name(op)),
            CmpImm { rn, imm } => write!(f, "cmp {rn}, #{imm}"),
            CmpReg { rn, rm } => write!(f, "cmp {rn}, {rm}"),
            Load {
                rd,
                base,
                offset,
                width,
            } => {
                write!(f, "ldr{} {rd}, [{base}, #{offset}]", width_suffix(width))
            }
            Store {
                rs,
                base,
                offset,
                width,
            } => {
                write!(f, "str{} {rs}, [{base}, #{offset}]", width_suffix(width))
            }
            LoadIdx {
                rd,
                base,
                index,
                width,
            } => {
                write!(f, "ldr{} {rd}, [{base}, {index}]", width_suffix(width))
            }
            StoreIdx {
                rs,
                base,
                index,
                width,
            } => {
                write!(f, "str{} {rs}, [{base}, {index}]", width_suffix(width))
            }
            Push { regs } => write!(f, "push {{{}}}", reg_list(regs)),
            Pop { regs } => write!(f, "pop {{{}}}", reg_list(regs)),
            AddSp { delta } => {
                if *delta >= 0 {
                    write!(f, "add sp, sp, #{delta}")
                } else {
                    write!(f, "sub sp, sp, #{}", -delta)
                }
            }
            Bl { callee } => write!(f, "bl fn{callee}"),
        }
    }
}

fn reg_list(regs: &[Reg]) -> String {
    regs.iter()
        .map(|r| r.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_immediates_use_narrow_encodings() {
        assert_eq!(
            Inst::MovImm {
                rd: Reg::R0,
                imm: 5
            }
            .size_bytes(),
            2
        );
        assert_eq!(
            Inst::MovImm {
                rd: Reg::R0,
                imm: 300
            }
            .size_bytes(),
            4
        );
        assert_eq!(
            Inst::MovImm {
                rd: Reg::R0,
                imm: 0x1234_5678
            }
            .size_bytes(),
            8
        );
        assert_eq!(
            Inst::MovImm {
                rd: Reg::R9,
                imm: 5
            }
            .size_bytes(),
            4
        );
    }

    #[test]
    fn add_encodings() {
        let narrow = Inst::AddImm {
            rd: Reg::R1,
            rn: Reg::R1,
            imm: 4,
        };
        let wide = Inst::AddImm {
            rd: Reg::R1,
            rn: Reg::R2,
            imm: 400,
        };
        assert_eq!(narrow.size_bytes(), 2);
        assert_eq!(wide.size_bytes(), 4);
        assert_eq!(
            Inst::AddReg {
                rd: Reg::R0,
                rn: Reg::R1,
                rm: Reg::R2
            }
            .size_bytes(),
            2
        );
        assert_eq!(
            Inst::AddReg {
                rd: Reg::R0,
                rn: Reg::R1,
                rm: Reg::R9
            }
            .size_bytes(),
            4
        );
    }

    #[test]
    fn loads_take_two_cycles_alu_takes_one() {
        let ld = Inst::Load {
            rd: Reg::R0,
            base: Reg::R1,
            offset: 0,
            width: MemWidth::Word,
        };
        let add = Inst::AddReg {
            rd: Reg::R0,
            rn: Reg::R0,
            rm: Reg::R1,
        };
        assert_eq!(ld.base_cycles(), 2);
        assert_eq!(add.base_cycles(), 1);
        assert_eq!(
            Inst::Sdiv {
                rd: Reg::R0,
                rn: Reg::R0,
                rm: Reg::R1
            }
            .base_cycles(),
            6
        );
    }

    #[test]
    fn push_pop_cycles_scale_with_register_count() {
        let p = Inst::Push {
            regs: vec![Reg::R4, Reg::R5, Reg::R6, Reg::Lr],
        };
        assert_eq!(p.base_cycles(), 5);
        assert_eq!(p.size_bytes(), 2);
        let p_high = Inst::Push {
            regs: vec![Reg::R8, Reg::R9],
        };
        assert_eq!(p_high.size_bytes(), 4);
    }

    #[test]
    fn classes_are_consistent_with_predicates() {
        let insts = [
            Inst::Nop,
            Inst::MovImm {
                rd: Reg::R0,
                imm: 1,
            },
            Inst::Mul {
                rd: Reg::R0,
                rn: Reg::R0,
                rm: Reg::R1,
            },
            Inst::Load {
                rd: Reg::R0,
                base: Reg::Sp,
                offset: 4,
                width: MemWidth::Word,
            },
            Inst::Store {
                rs: Reg::R0,
                base: Reg::Sp,
                offset: 4,
                width: MemWidth::Word,
            },
            Inst::Bl { callee: 3 },
            Inst::Push {
                regs: vec![Reg::R4],
            },
        ];
        for i in &insts {
            if i.class() == InstClass::Load {
                assert!(i.is_load(), "{i}");
            }
            if i.class() == InstClass::Store {
                assert!(i.is_store(), "{i}");
            }
            if i.class() == InstClass::Call {
                assert!(i.is_call(), "{i}");
            }
        }
    }

    #[test]
    fn sp_relative_word_accesses_are_narrow() {
        let spill = Inst::Store {
            rs: Reg::R3,
            base: Reg::Sp,
            offset: 16,
            width: MemWidth::Word,
        };
        assert_eq!(spill.size_bytes(), 2);
        let far = Inst::Store {
            rs: Reg::R3,
            base: Reg::R10,
            offset: 200,
            width: MemWidth::Word,
        };
        assert_eq!(far.size_bytes(), 4);
    }

    #[test]
    fn display_is_assembly_like() {
        let i = Inst::Load {
            rd: Reg::R2,
            base: Reg::R3,
            offset: 8,
            width: MemWidth::Byte,
        };
        assert_eq!(i.to_string(), "ldrb r2, [r3, #8]");
        let b = Inst::Bl { callee: 7 };
        assert_eq!(b.to_string(), "bl fn7");
        let p = Inst::Push {
            regs: vec![Reg::R4, Reg::Lr],
        };
        assert_eq!(p.to_string(), "push {r4, lr}");
    }
}
