//! Terminator cost tables (Figure 4) and the core timing model.
//!
//! The paper's ILP model needs two instrumentation costs per basic block:
//! `K_b`, the extra **bytes** required to rewrite the block's terminator into
//! a long-range indirect branch, and `T_b`, the extra **cycles** executed
//! when that rewritten terminator runs.  Figure 4 of the paper tabulates the
//! rewritten sequences for the Cortex-M3 / Thumb-2 instruction set; the
//! numbers here are exactly those.

/// Structural kind of a block terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TermKind {
    /// Direct unconditional branch (`b`).
    Uncond,
    /// Direct conditional branch (`b<cond>`).
    Cond,
    /// Compare-and-branch (`cbz`/`cbnz`), the "short conditional branch".
    ShortCond,
    /// No branch; execution falls through to the next block in layout order.
    FallThrough,
    /// Function return (`bx lr`).
    Return,
    /// Instrumented unconditional branch (`ldr pc, =label`).
    IndirectUncond,
    /// Instrumented conditional branch (IT + two literal loads + `bx`).
    IndirectCond,
    /// Instrumented compare-and-branch (compare + IT + two loads + `bx`).
    IndirectShortCond,
    /// Instrumented fall-through (`ldr pc, =label`).
    IndirectFallThrough,
}

/// The byte and cycle overhead of instrumenting a basic block so that its
/// terminator can reach the other memory (the paper's `K_b` and `T_b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct InstrumentationCost {
    /// Extra bytes added to the block (`K_b`).
    pub extra_bytes: u32,
    /// Extra cycles executed each time the block runs (`T_b`).
    pub extra_cycles: u64,
}

impl TermKind {
    /// Whether this is one of the instrumented, long-range forms.
    pub fn is_indirect(self) -> bool {
        matches!(
            self,
            TermKind::IndirectUncond
                | TermKind::IndirectCond
                | TermKind::IndirectShortCond
                | TermKind::IndirectFallThrough
        )
    }

    /// The indirect form this kind is rewritten into (returns are unchanged).
    pub fn indirect_form(self) -> TermKind {
        match self {
            TermKind::Uncond => TermKind::IndirectUncond,
            TermKind::Cond => TermKind::IndirectCond,
            TermKind::ShortCond => TermKind::IndirectShortCond,
            TermKind::FallThrough => TermKind::IndirectFallThrough,
            other => other,
        }
    }

    /// Encoding size in bytes of the terminator sequence (Figure 4).
    pub fn size_bytes(self) -> u32 {
        match self {
            TermKind::Uncond | TermKind::Cond | TermKind::ShortCond | TermKind::Return => 2,
            TermKind::FallThrough => 0,
            TermKind::IndirectUncond | TermKind::IndirectFallThrough => 4,
            TermKind::IndirectCond => 8,
            TermKind::IndirectShortCond => 10,
        }
    }

    /// Cycles executed when the terminator transfers control to its taken
    /// target (pipeline refill included), per Figure 4.
    pub fn taken_cycles(self) -> u64 {
        match self {
            TermKind::Uncond | TermKind::Cond | TermKind::ShortCond | TermKind::Return => 3,
            TermKind::FallThrough => 0,
            TermKind::IndirectUncond | TermKind::IndirectFallThrough => 4,
            TermKind::IndirectCond => 7,
            TermKind::IndirectShortCond => 8,
        }
    }

    /// Cycles executed when a two-way terminator does **not** take its branch.
    ///
    /// The instrumented forms always perform the indirect transfer, so taken
    /// and not-taken costs coincide for them.
    pub fn not_taken_cycles(self) -> u64 {
        match self {
            TermKind::Cond | TermKind::ShortCond => 1,
            TermKind::Uncond | TermKind::Return => 3,
            TermKind::FallThrough => 0,
            indirect => indirect.taken_cycles(),
        }
    }

    /// The `K_b`/`T_b` delta between the direct form and its instrumented
    /// replacement.  Already-indirect forms and returns cost nothing extra.
    pub fn instrumentation_cost(self) -> InstrumentationCost {
        if self.is_indirect() || self == TermKind::Return {
            return InstrumentationCost::default();
        }
        let ind = self.indirect_form();
        InstrumentationCost {
            extra_bytes: ind.size_bytes() - self.size_bytes(),
            extra_cycles: ind.taken_cycles() - self.taken_cycles(),
        }
    }
}

/// Flash wait-state and prefetch-buffer configuration at one operating
/// point.
///
/// Fast cores outrun their flash: above a part-specific clock threshold
/// every flash access pays [`FlashTiming::wait_states`] extra cycles.  A
/// prefetch buffer hides those stalls for sequential fetch but not across a
/// control transfer, which discards the prefetched words and pays the wait
/// states as a pipeline-refill penalty instead.  Zero-wait-state parts (the
/// paper's STM32F100 at 24 MHz) pay nothing either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlashTiming {
    /// Extra cycles per flash access at this clock.
    pub wait_states: u64,
    /// Whether the prefetch buffer hides sequential-fetch wait states.
    pub prefetch_enabled: bool,
}

impl FlashTiming {
    /// Zero-wait-state flash: no penalty regardless of prefetch.
    pub const ZERO_WAIT: FlashTiming = FlashTiming {
        wait_states: 0,
        prefetch_enabled: true,
    };
}

/// Core clock and pipeline parameters of the modelled microcontroller.
///
/// The historical shape of these numbers is the STM32F100-class part the
/// paper prototypes on: a Cortex-M3 running at 24 MHz with zero-wait-state
/// flash, where both memories are single-cycle but a load executed *from*
/// RAM contends with the instruction fetch on the RAM interface.  The
/// [`FlashTiming`] field generalizes the model to faster parts whose flash
/// needs wait states; a `flashram-device` descriptor's operating point
/// supplies it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Core clock frequency in hertz.
    pub clock_hz: f64,
    /// Stall cycles added to a load instruction when both the fetch and the
    /// data access target RAM (the source of the paper's `L_b` parameter).
    pub ram_load_contention_cycles: u64,
    /// Stall cycles added to a store under the same contention conditions.
    pub ram_store_contention_cycles: u64,
    /// Flash wait-state/prefetch configuration at this clock.
    pub flash: FlashTiming,
}

impl TimingModel {
    /// Duration of one core clock cycle in seconds.
    pub fn cycle_time_s(&self) -> f64 {
        1.0 / self.clock_hz
    }

    /// Convert a cycle count to seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 * self.cycle_time_s()
    }

    /// Extra cycles every instruction fetched from flash pays: the wait
    /// states, unless the prefetch buffer hides sequential fetch.
    pub fn flash_instr_penalty_cycles(&self) -> u64 {
        if self.flash.prefetch_enabled {
            0
        } else {
            self.flash.wait_states
        }
    }

    /// Extra cycles a control transfer out of flash pays to refill the
    /// prefetch buffer.  Only charged when prefetching is enabled — without
    /// a prefetch buffer the per-instruction penalty already covers the
    /// post-redirect fetch.
    pub fn flash_refill_penalty_cycles(&self) -> u64 {
        if self.flash.prefetch_enabled {
            self.flash.wait_states
        } else {
            0
        }
    }

    /// Total wait-state penalty of a flash-resident block's terminator:
    /// the terminator is itself a fetched instruction (per-instruction
    /// penalty) and, when it actually transfers control, it also refills
    /// the fetch stream.  `FallThrough` has no encoded instruction and no
    /// redirect, so it pays nothing; a not-taken two-way branch continues
    /// sequentially and pays only the per-instruction penalty.
    pub fn flash_terminator_penalty_cycles(&self, kind: TermKind, taken: bool) -> u64 {
        if kind == TermKind::FallThrough {
            return 0;
        }
        let transfers = match kind {
            TermKind::Cond | TermKind::ShortCond => taken,
            // Uncond, Return and every indirect form redirect fetch even on
            // their "not taken" cost path (the indirect forms always
            // perform the long-range transfer).
            _ => true,
        };
        self.flash_instr_penalty_cycles()
            + if transfers {
                self.flash_refill_penalty_cycles()
            } else {
                0
            }
    }

    /// Total wait-state penalty of a call instruction fetched from flash:
    /// its own fetch plus the redirect to the callee.
    pub fn flash_call_penalty_cycles(&self) -> u64 {
        self.flash_instr_penalty_cycles() + self.flash_refill_penalty_cycles()
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        CORTEX_M3_TIMING
    }
}

/// Timing model of the STM32F100RB-class Cortex-M3 used in the paper's
/// evaluation (24 MHz, single-cycle memories, one extra cycle of RAM-bus
/// contention per load executed out of RAM).
pub const CORTEX_M3_TIMING: TimingModel = TimingModel {
    clock_hz: 24_000_000.0,
    ram_load_contention_cycles: 1,
    ram_store_contention_cycles: 1,
    flash: FlashTiming::ZERO_WAIT,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_table_is_reproduced() {
        assert_eq!(TermKind::Uncond.instrumentation_cost().extra_bytes, 2);
        assert_eq!(TermKind::Uncond.instrumentation_cost().extra_cycles, 1);
        assert_eq!(TermKind::Cond.instrumentation_cost().extra_bytes, 6);
        assert_eq!(TermKind::Cond.instrumentation_cost().extra_cycles, 4);
        assert_eq!(TermKind::ShortCond.instrumentation_cost().extra_bytes, 8);
        assert_eq!(TermKind::ShortCond.instrumentation_cost().extra_cycles, 5);
        assert_eq!(TermKind::FallThrough.instrumentation_cost().extra_bytes, 4);
        assert_eq!(TermKind::FallThrough.instrumentation_cost().extra_cycles, 4);
    }

    #[test]
    fn indirect_forms_cost_nothing_more() {
        for k in [
            TermKind::IndirectUncond,
            TermKind::IndirectCond,
            TermKind::IndirectShortCond,
            TermKind::IndirectFallThrough,
            TermKind::Return,
        ] {
            assert_eq!(k.instrumentation_cost(), InstrumentationCost::default());
        }
    }

    #[test]
    fn indirect_form_mapping_is_fixed_point_on_indirects() {
        for k in [
            TermKind::Uncond,
            TermKind::Cond,
            TermKind::ShortCond,
            TermKind::FallThrough,
        ] {
            let ind = k.indirect_form();
            assert!(ind.is_indirect());
            assert_eq!(ind.indirect_form(), ind);
        }
        assert_eq!(TermKind::Return.indirect_form(), TermKind::Return);
    }

    #[test]
    fn timing_model_cycle_time() {
        let t = CORTEX_M3_TIMING;
        let dt = t.cycle_time_s();
        assert!((dt - 1.0 / 24e6).abs() < 1e-15);
        assert!((t.cycles_to_seconds(24_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_wait_flash_pays_no_penalties() {
        let t = CORTEX_M3_TIMING;
        assert_eq!(t.flash_instr_penalty_cycles(), 0);
        assert_eq!(t.flash_refill_penalty_cycles(), 0);
        assert_eq!(t.flash_call_penalty_cycles(), 0);
        for kind in [TermKind::Uncond, TermKind::Cond, TermKind::Return] {
            assert_eq!(t.flash_terminator_penalty_cycles(kind, true), 0);
            assert_eq!(t.flash_terminator_penalty_cycles(kind, false), 0);
        }
    }

    #[test]
    fn prefetch_splits_the_wait_state_penalty() {
        let mut t = CORTEX_M3_TIMING;
        t.flash = FlashTiming {
            wait_states: 2,
            prefetch_enabled: true,
        };
        // Prefetch hides sequential fetch; redirects pay the refill.
        assert_eq!(t.flash_instr_penalty_cycles(), 0);
        assert_eq!(t.flash_refill_penalty_cycles(), 2);
        assert_eq!(t.flash_call_penalty_cycles(), 2);
        assert_eq!(t.flash_terminator_penalty_cycles(TermKind::Uncond, true), 2);
        assert_eq!(t.flash_terminator_penalty_cycles(TermKind::Cond, true), 2);
        assert_eq!(t.flash_terminator_penalty_cycles(TermKind::Cond, false), 0);
        assert_eq!(
            t.flash_terminator_penalty_cycles(TermKind::IndirectCond, false),
            2,
            "indirect forms always transfer"
        );
        assert_eq!(
            t.flash_terminator_penalty_cycles(TermKind::FallThrough, true),
            0
        );

        t.flash.prefetch_enabled = false;
        // Without prefetch every fetch pays, and nothing extra on redirect.
        assert_eq!(t.flash_instr_penalty_cycles(), 2);
        assert_eq!(t.flash_refill_penalty_cycles(), 0);
        assert_eq!(t.flash_call_penalty_cycles(), 2);
        assert_eq!(t.flash_terminator_penalty_cycles(TermKind::Cond, false), 2);
        assert_eq!(
            t.flash_terminator_penalty_cycles(TermKind::FallThrough, true),
            0
        );
    }

    #[test]
    fn not_taken_is_never_more_expensive_than_taken() {
        for k in [
            TermKind::Uncond,
            TermKind::Cond,
            TermKind::ShortCond,
            TermKind::FallThrough,
            TermKind::Return,
            TermKind::IndirectUncond,
            TermKind::IndirectCond,
            TermKind::IndirectShortCond,
            TermKind::IndirectFallThrough,
        ] {
            assert!(k.not_taken_cycles() <= k.taken_cycles(), "{k:?}");
        }
    }
}
