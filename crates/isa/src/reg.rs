//! General purpose registers of the modelled core.
//!
//! The register file follows the ARMv7-M convention: thirteen general purpose
//! registers, a dedicated stack pointer, link register and program counter.
//! Only the registers the code generator and the instrumentation sequences
//! actually use are modelled; the optimizer never needs the system registers.

use std::fmt;

/// A core register.
///
/// `R0`–`R3` are the argument / scratch registers of the AAPCS calling
/// convention, `R4`–`R11` are callee saved, `R12` is the intra-procedure
/// scratch register used by the long-branch instrumentation, and `SP`/`LR`/`PC`
/// have their usual roles.
///
/// # Example
///
/// ```
/// use flashram_isa::Reg;
/// assert_eq!(Reg::R3.index(), 3);
/// assert_eq!(Reg::from_index(13), Some(Reg::Sp));
/// assert!(Reg::R5.is_callee_saved());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    /// Stack pointer (r13).
    Sp,
    /// Link register (r14).
    Lr,
    /// Program counter (r15).
    Pc,
}

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::Sp,
        Reg::Lr,
        Reg::Pc,
    ];

    /// The registers available to the register allocator for expression
    /// temporaries and locals (`R0`–`R7`, the "low" registers addressable by
    /// most 16-bit encodings, plus `R8`–`R11`).
    pub const ALLOCATABLE: [Reg; 12] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
    ];

    /// Argument registers in AAPCS order.
    pub const ARGS: [Reg; 4] = [Reg::R0, Reg::R1, Reg::R2, Reg::R3];

    /// Numeric index of the register (0–15).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The register with the given index, if it is in range.
    pub fn from_index(index: usize) -> Option<Reg> {
        Reg::ALL.get(index).copied()
    }

    /// Whether the register is one of the "low" registers reachable by most
    /// 16-bit Thumb encodings.
    pub fn is_low(self) -> bool {
        self.index() < 8
    }

    /// Whether the AAPCS requires a callee to preserve this register.
    pub fn is_callee_saved(self) -> bool {
        matches!(
            self,
            Reg::R4 | Reg::R5 | Reg::R6 | Reg::R7 | Reg::R8 | Reg::R9 | Reg::R10 | Reg::R11
        )
    }

    /// Whether this is a caller-saved scratch register.
    pub fn is_caller_saved(self) -> bool {
        matches!(self, Reg::R0 | Reg::R1 | Reg::R2 | Reg::R3 | Reg::R12)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Sp => write!(f, "sp"),
            Reg::Lr => write!(f, "lr"),
            Reg::Pc => write!(f, "pc"),
            other => write!(f, "r{}", other.index()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i), Some(*r));
        }
        assert_eq!(Reg::from_index(16), None);
    }

    #[test]
    fn low_registers_are_r0_to_r7() {
        let low: Vec<Reg> = Reg::ALL.iter().copied().filter(|r| r.is_low()).collect();
        assert_eq!(low.len(), 8);
        assert!(low.contains(&Reg::R0));
        assert!(low.contains(&Reg::R7));
        assert!(!Reg::R8.is_low());
        assert!(!Reg::Sp.is_low());
    }

    #[test]
    fn saved_partition_is_disjoint() {
        for r in Reg::ALL {
            assert!(
                !(r.is_callee_saved() && r.is_caller_saved()),
                "{r} is both callee and caller saved"
            );
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::R12.to_string(), "r12");
        assert_eq!(Reg::Sp.to_string(), "sp");
        assert_eq!(Reg::Lr.to_string(), "lr");
        assert_eq!(Reg::Pc.to_string(), "pc");
    }

    #[test]
    fn allocatable_excludes_special_registers() {
        assert!(!Reg::ALLOCATABLE.contains(&Reg::Sp));
        assert!(!Reg::ALLOCATABLE.contains(&Reg::Lr));
        assert!(!Reg::ALLOCATABLE.contains(&Reg::Pc));
        assert!(!Reg::ALLOCATABLE.contains(&Reg::R12));
    }
}
