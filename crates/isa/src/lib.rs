//! A Thumb-2-like instruction set model for deeply embedded systems.
//!
//! This crate is the lowest layer of the flash/RAM placement reproduction of
//! Pallister, Eder and Hollis, *Optimizing the flash-RAM energy trade-off in
//! deeply embedded systems* (CGO 2015).  It models the properties of the
//! Cortex-M3 / Thumb-2 instruction stream that the paper's cost model depends
//! on:
//!
//! * instruction **encoding sizes** (16-bit vs 32-bit encodings), which drive
//!   the basic-block size parameter `S_b` and the instrumentation byte cost
//!   `K_b`,
//! * instruction **cycle costs** in the style of the Cortex-M3 (single-cycle
//!   ALU, two-cycle loads, pipeline-refill cost for taken branches), which
//!   drive `C_b` and `T_b`,
//! * an **instruction class** taxonomy used by the power model (Figure 1 of
//!   the paper assigns a different average power to loads, stores, ALU ops,
//!   no-ops and branches depending on which memory the code executes from),
//! * the **block terminators** and the long-range *indirect* forms that the
//!   code transformation substitutes when a block must jump between flash and
//!   RAM (Figure 4 of the paper), together with their exact byte and cycle
//!   overheads.
//!
//! The machine-level program representation that groups instructions into
//! basic blocks and functions lives in `flashram-ir`; the execution and
//! energy semantics live in `flashram-mcu`.
//!
//! # Example
//!
//! ```
//! use flashram_isa::{Inst, Reg, Terminator, Cond};
//!
//! let add = Inst::AddImm { rd: Reg::R0, rn: Reg::R0, imm: 1 };
//! assert_eq!(add.size_bytes(), 2);
//! assert_eq!(add.base_cycles(), 1);
//!
//! // A conditional branch that has to reach the other memory becomes an
//! // IT + two literal loads + BX sequence, costing 8 bytes / 7 cycles.
//! let t: Terminator<u32> = Terminator::CondBranch { cond: Cond::Ne, target: 1, fallthrough: 2 };
//! let i = t.clone().into_indirect();
//! assert_eq!(i.size_bytes(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cond;
pub mod cost;
pub mod inst;
pub mod reg;
pub mod term;

pub use cond::Cond;
pub use cost::{FlashTiming, InstrumentationCost, TermKind, TimingModel, CORTEX_M3_TIMING};
pub use inst::{Inst, InstClass, MemWidth, ShiftOp, SymbolId};
pub use reg::Reg;
pub use term::Terminator;
