//! Condition codes and the APSR flag state they are evaluated against.

use std::fmt;

/// The four condition flags of the application program status register.
///
/// The simulator keeps one of these per core and updates it from flag-setting
/// instructions (`cmp`, `subs`, ...); condition codes are evaluated against it
/// when a conditional branch or an IT block is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Flags {
    /// Negative.
    pub n: bool,
    /// Zero.
    pub z: bool,
    /// Carry.
    pub c: bool,
    /// Overflow.
    pub v: bool,
}

impl Flags {
    /// Compute the flags produced by comparing `lhs` with `rhs`
    /// (i.e. the flags of `lhs - rhs` as `cmp` would set them).
    #[inline]
    pub fn from_cmp(lhs: i32, rhs: i32) -> Flags {
        let (res, overflow) = lhs.overflowing_sub(rhs);
        let (_, borrow) = (lhs as u32).overflowing_sub(rhs as u32);
        Flags {
            n: res < 0,
            z: res == 0,
            // ARM carry flag after subtraction is NOT borrow.
            c: !borrow,
            v: overflow,
        }
    }

    /// Compute the flags produced by a flag-setting move/logical result.
    #[inline]
    pub fn from_result(value: i32) -> Flags {
        Flags {
            n: value < 0,
            z: value == 0,
            c: false,
            v: false,
        }
    }
}

/// A Thumb-2 condition code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal (Z set).
    Eq,
    /// Not equal (Z clear).
    Ne,
    /// Carry set / unsigned higher or same.
    Cs,
    /// Carry clear / unsigned lower.
    Cc,
    /// Minus / negative.
    Mi,
    /// Plus / positive or zero.
    Pl,
    /// Overflow set.
    Vs,
    /// Overflow clear.
    Vc,
    /// Unsigned higher.
    Hi,
    /// Unsigned lower or same.
    Ls,
    /// Signed greater than or equal.
    Ge,
    /// Signed less than.
    Lt,
    /// Signed greater than.
    Gt,
    /// Signed less than or equal.
    Le,
    /// Always.
    Al,
}

impl Cond {
    /// Every condition code, in encoding order.
    pub const ALL: [Cond; 15] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Cs,
        Cond::Cc,
        Cond::Mi,
        Cond::Pl,
        Cond::Vs,
        Cond::Vc,
        Cond::Hi,
        Cond::Ls,
        Cond::Ge,
        Cond::Lt,
        Cond::Gt,
        Cond::Le,
        Cond::Al,
    ];

    /// The logical negation of the condition (`AL` is its own negation).
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Cs => Cond::Cc,
            Cond::Cc => Cond::Cs,
            Cond::Mi => Cond::Pl,
            Cond::Pl => Cond::Mi,
            Cond::Vs => Cond::Vc,
            Cond::Vc => Cond::Vs,
            Cond::Hi => Cond::Ls,
            Cond::Ls => Cond::Hi,
            Cond::Ge => Cond::Lt,
            Cond::Lt => Cond::Ge,
            Cond::Gt => Cond::Le,
            Cond::Le => Cond::Gt,
            Cond::Al => Cond::Al,
        }
    }

    /// Evaluate the condition against a flag state.
    #[inline]
    pub fn holds(self, f: Flags) -> bool {
        match self {
            Cond::Eq => f.z,
            Cond::Ne => !f.z,
            Cond::Cs => f.c,
            Cond::Cc => !f.c,
            Cond::Mi => f.n,
            Cond::Pl => !f.n,
            Cond::Vs => f.v,
            Cond::Vc => !f.v,
            Cond::Hi => f.c && !f.z,
            Cond::Ls => !f.c || f.z,
            Cond::Ge => f.n == f.v,
            Cond::Lt => f.n != f.v,
            Cond::Gt => !f.z && (f.n == f.v),
            Cond::Le => f.z || (f.n != f.v),
            Cond::Al => true,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Cs => "cs",
            Cond::Cc => "cc",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
            Cond::Vs => "vs",
            Cond::Vc => "vc",
            Cond::Hi => "hi",
            Cond::Ls => "ls",
            Cond::Ge => "ge",
            Cond::Lt => "lt",
            Cond::Gt => "gt",
            Cond::Le => "le",
            Cond::Al => "al",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negation_is_involutive() {
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), c);
        }
    }

    #[test]
    fn negation_flips_truth_value() {
        let samples = [
            Flags::from_cmp(0, 0),
            Flags::from_cmp(1, 2),
            Flags::from_cmp(2, 1),
            Flags::from_cmp(-5, 3),
            Flags::from_cmp(i32::MIN, 1),
            Flags::from_cmp(i32::MAX, -1),
        ];
        for c in Cond::ALL {
            if c == Cond::Al {
                continue;
            }
            for f in samples {
                assert_ne!(c.holds(f), c.negate().holds(f), "{c} on {f:?}");
            }
        }
    }

    #[test]
    fn signed_comparisons_match_rust_semantics() {
        let pairs = [
            (0, 0),
            (1, 2),
            (2, 1),
            (-1, 1),
            (1, -1),
            (i32::MIN, i32::MAX),
            (i32::MAX, i32::MIN),
            (-100, -100),
        ];
        for (a, b) in pairs {
            let f = Flags::from_cmp(a, b);
            assert_eq!(Cond::Eq.holds(f), a == b, "eq {a} {b}");
            assert_eq!(Cond::Ne.holds(f), a != b, "ne {a} {b}");
            assert_eq!(Cond::Lt.holds(f), a < b, "lt {a} {b}");
            assert_eq!(Cond::Le.holds(f), a <= b, "le {a} {b}");
            assert_eq!(Cond::Gt.holds(f), a > b, "gt {a} {b}");
            assert_eq!(Cond::Ge.holds(f), a >= b, "ge {a} {b}");
        }
    }

    #[test]
    fn unsigned_comparisons_match_rust_semantics() {
        let pairs: [(u32, u32); 6] = [
            (0, 0),
            (1, 2),
            (2, 1),
            (u32::MAX, 0),
            (0, u32::MAX),
            (0x8000_0000, 0x7fff_ffff),
        ];
        for (a, b) in pairs {
            let f = Flags::from_cmp(a as i32, b as i32);
            assert_eq!(Cond::Hi.holds(f), a > b, "hi {a} {b}");
            assert_eq!(Cond::Ls.holds(f), a <= b, "ls {a} {b}");
            assert_eq!(Cond::Cs.holds(f), a >= b, "cs {a} {b}");
            assert_eq!(Cond::Cc.holds(f), a < b, "cc {a} {b}");
        }
    }

    #[test]
    fn always_holds() {
        assert!(Cond::Al.holds(Flags::default()));
        assert!(Cond::Al.holds(Flags::from_cmp(3, 7)));
    }
}
