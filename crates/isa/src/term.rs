//! Basic-block terminators and their long-range (indirect) forms.
//!
//! The flash/RAM placement transformation never touches the body of a basic
//! block; it only rewrites the control transfer at its end when the block and
//! one of its successors end up in different memories (Section 5 / Figure 4
//! of the paper).  Terminators are therefore modelled separately from the
//! instruction stream, parameterised over the label type `L` so that the
//! machine-level IR can use its own block identifiers.

use std::fmt;

use crate::cond::Cond;
use crate::cost::{InstrumentationCost, TermKind};
use crate::reg::Reg;

/// The control transfer at the end of a basic block.
///
/// The *direct* variants are what the code generator emits; the *indirect*
/// variants are the Figure 4 instrumentation sequences that can reach any
/// address in the 32-bit unified address space and are substituted by the
/// transformation when control must cross between flash and RAM.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Terminator<L> {
    /// `b target` — unconditional PC-relative branch.
    Branch {
        /// Successor block.
        target: L,
    },
    /// `b<cond> target` with fall-through to `fallthrough`.
    CondBranch {
        /// Condition under which the branch is taken.
        cond: Cond,
        /// Successor when the condition holds.
        target: L,
        /// Successor when it does not.
        fallthrough: L,
    },
    /// `cbz`/`cbnz rn, target` — compare-with-zero-and-branch, the Thumb-2
    /// "short conditional branch" of Figure 4.
    CompareBranch {
        /// Branch if the register is non-zero (`cbnz`) or zero (`cbz`).
        nonzero: bool,
        /// Register compared with zero.
        rn: Reg,
        /// Successor when the branch is taken.
        target: L,
        /// Successor when it is not.
        fallthrough: L,
    },
    /// No branch at all: execution falls through into `target`.
    FallThrough {
        /// The next block in layout order.
        target: L,
    },
    /// `bx lr` — return from the function.
    Return,
    /// `ldr pc, =target` — indirect unconditional branch (instrumented form).
    IndirectBranch {
        /// Successor block.
        target: L,
    },
    /// `it <cond>; ldr<cond> r5, =target; ldr<!cond> r5, =fallthrough; bx r5`
    /// — indirect conditional branch (instrumented form).
    IndirectCondBranch {
        /// Condition under which `target` is selected.
        cond: Cond,
        /// Successor when the condition holds.
        target: L,
        /// Successor when it does not.
        fallthrough: L,
    },
    /// `cmp rn, #0; it ..; ldr.. r5, =target; ldr.. r5, =fallthrough; bx r5`
    /// — instrumented form of `cbz`/`cbnz`.
    IndirectCompareBranch {
        /// Branch if the register is non-zero.
        nonzero: bool,
        /// Register compared with zero.
        rn: Reg,
        /// Successor when the branch is taken.
        target: L,
        /// Successor when it is not.
        fallthrough: L,
    },
    /// `ldr pc, =target` substituted for a fall-through whose next block is
    /// in the other memory (instrumented form).
    IndirectFallThrough {
        /// Successor block.
        target: L,
    },
}

impl<L> Terminator<L> {
    /// The successors of the block, in `(taken, fall-through)` order where
    /// that distinction exists.  Returns are successor-less.
    pub fn successors(&self) -> Vec<&L> {
        match self {
            Terminator::Branch { target }
            | Terminator::FallThrough { target }
            | Terminator::IndirectBranch { target }
            | Terminator::IndirectFallThrough { target } => vec![target],
            Terminator::CondBranch {
                target,
                fallthrough,
                ..
            }
            | Terminator::CompareBranch {
                target,
                fallthrough,
                ..
            }
            | Terminator::IndirectCondBranch {
                target,
                fallthrough,
                ..
            }
            | Terminator::IndirectCompareBranch {
                target,
                fallthrough,
                ..
            } => {
                vec![target, fallthrough]
            }
            Terminator::Return => vec![],
        }
    }

    /// The structural kind of the terminator, used to look up Figure 4 costs.
    pub fn kind(&self) -> TermKind {
        match self {
            Terminator::Branch { .. } => TermKind::Uncond,
            Terminator::CondBranch { .. } => TermKind::Cond,
            Terminator::CompareBranch { .. } => TermKind::ShortCond,
            Terminator::FallThrough { .. } => TermKind::FallThrough,
            Terminator::Return => TermKind::Return,
            Terminator::IndirectBranch { .. } => TermKind::IndirectUncond,
            Terminator::IndirectCondBranch { .. } => TermKind::IndirectCond,
            Terminator::IndirectCompareBranch { .. } => TermKind::IndirectShortCond,
            Terminator::IndirectFallThrough { .. } => TermKind::IndirectFallThrough,
        }
    }

    /// Whether the terminator is already one of the instrumented (indirect,
    /// long-range) forms.
    pub fn is_indirect(&self) -> bool {
        self.kind().is_indirect()
    }

    /// Encoding size of the terminator sequence in bytes (Figure 4).
    pub fn size_bytes(&self) -> u32 {
        self.kind().size_bytes()
    }

    /// Cycles taken when the branch is **taken** (or simply executed, for the
    /// unconditional forms), per Figure 4 and the Cortex-M3 pipeline model.
    pub fn taken_cycles(&self) -> u64 {
        self.kind().taken_cycles()
    }

    /// Cycles taken when a two-way terminator is **not taken**.
    pub fn not_taken_cycles(&self) -> u64 {
        self.kind().not_taken_cycles()
    }

    /// The byte/cycle overhead this terminator would incur if it had to be
    /// rewritten into its indirect form (the paper's `K_b` and `T_b`).
    pub fn instrumentation_cost(&self) -> InstrumentationCost {
        self.kind().instrumentation_cost()
    }

    /// Rewrite the terminator into its indirect, long-range form.
    ///
    /// Indirect forms are returned unchanged, as is [`Terminator::Return`]
    /// (`bx lr` already transfers to an absolute address held in `lr`).
    pub fn into_indirect(self) -> Terminator<L> {
        match self {
            Terminator::Branch { target } => Terminator::IndirectBranch { target },
            Terminator::CondBranch {
                cond,
                target,
                fallthrough,
            } => Terminator::IndirectCondBranch {
                cond,
                target,
                fallthrough,
            },
            Terminator::CompareBranch {
                nonzero,
                rn,
                target,
                fallthrough,
            } => Terminator::IndirectCompareBranch {
                nonzero,
                rn,
                target,
                fallthrough,
            },
            Terminator::FallThrough { target } => Terminator::IndirectFallThrough { target },
            other => other,
        }
    }

    /// Map the label type, preserving the terminator structure.
    pub fn map_label<M, F: FnMut(L) -> M>(self, mut f: F) -> Terminator<M> {
        match self {
            Terminator::Branch { target } => Terminator::Branch { target: f(target) },
            Terminator::CondBranch {
                cond,
                target,
                fallthrough,
            } => Terminator::CondBranch {
                cond,
                target: f(target),
                fallthrough: f(fallthrough),
            },
            Terminator::CompareBranch {
                nonzero,
                rn,
                target,
                fallthrough,
            } => Terminator::CompareBranch {
                nonzero,
                rn,
                target: f(target),
                fallthrough: f(fallthrough),
            },
            Terminator::FallThrough { target } => Terminator::FallThrough { target: f(target) },
            Terminator::Return => Terminator::Return,
            Terminator::IndirectBranch { target } => {
                Terminator::IndirectBranch { target: f(target) }
            }
            Terminator::IndirectCondBranch {
                cond,
                target,
                fallthrough,
            } => Terminator::IndirectCondBranch {
                cond,
                target: f(target),
                fallthrough: f(fallthrough),
            },
            Terminator::IndirectCompareBranch {
                nonzero,
                rn,
                target,
                fallthrough,
            } => Terminator::IndirectCompareBranch {
                nonzero,
                rn,
                target: f(target),
                fallthrough: f(fallthrough),
            },
            Terminator::IndirectFallThrough { target } => {
                Terminator::IndirectFallThrough { target: f(target) }
            }
        }
    }
}

impl<L: fmt::Display> fmt::Display for Terminator<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Branch { target } => write!(f, "b .{target}"),
            Terminator::CondBranch {
                cond,
                target,
                fallthrough,
            } => {
                write!(f, "b{cond} .{target} ; else fall through to .{fallthrough}")
            }
            Terminator::CompareBranch {
                nonzero,
                rn,
                target,
                fallthrough,
            } => {
                let op = if *nonzero { "cbnz" } else { "cbz" };
                write!(
                    f,
                    "{op} {rn}, .{target} ; else fall through to .{fallthrough}"
                )
            }
            Terminator::FallThrough { target } => write!(f, "; fall through to .{target}"),
            Terminator::Return => write!(f, "bx lr"),
            Terminator::IndirectBranch { target } => write!(f, "ldr pc, =.{target}"),
            Terminator::IndirectCondBranch {
                cond,
                target,
                fallthrough,
            } => {
                write!(
                    f,
                    "it {cond} ; ldr{cond} r5, =.{target} ; ldr{} r5, =.{fallthrough} ; bx r5",
                    cond.negate()
                )
            }
            Terminator::IndirectCompareBranch {
                nonzero,
                rn,
                target,
                fallthrough,
            } => {
                let (c_taken, c_not) = if *nonzero {
                    (Cond::Ne, Cond::Eq)
                } else {
                    (Cond::Eq, Cond::Ne)
                };
                write!(
                    f,
                    "cmp {rn}, #0 ; it {c_taken} ; ldr{c_taken} r5, =.{target} ; ldr{c_not} r5, =.{fallthrough} ; bx r5"
                )
            }
            Terminator::IndirectFallThrough { target } => write!(f, "ldr pc, =.{target}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successors_of_each_form() {
        let ret: Terminator<u32> = Terminator::Return;
        assert!(ret.successors().is_empty());
        let b: Terminator<u32> = Terminator::Branch { target: 3 };
        assert_eq!(b.successors(), vec![&3]);
        let c: Terminator<u32> = Terminator::CondBranch {
            cond: Cond::Eq,
            target: 1,
            fallthrough: 2,
        };
        assert_eq!(c.successors(), vec![&1, &2]);
    }

    #[test]
    fn figure4_sizes_and_cycles() {
        // Direct forms.
        let b: Terminator<u32> = Terminator::Branch { target: 0 };
        assert_eq!(b.size_bytes(), 2);
        assert_eq!(b.taken_cycles(), 3);
        let cb: Terminator<u32> = Terminator::CondBranch {
            cond: Cond::Ne,
            target: 0,
            fallthrough: 1,
        };
        assert_eq!(cb.size_bytes(), 2);
        assert_eq!(cb.taken_cycles(), 3);
        assert_eq!(cb.not_taken_cycles(), 1);
        let ft: Terminator<u32> = Terminator::FallThrough { target: 0 };
        assert_eq!(ft.size_bytes(), 0);
        assert_eq!(ft.taken_cycles(), 0);

        // Instrumented forms, exactly the Figure 4 numbers.
        assert_eq!(b.clone().into_indirect().size_bytes(), 4);
        assert_eq!(b.into_indirect().taken_cycles(), 4);
        assert_eq!(cb.clone().into_indirect().size_bytes(), 8);
        assert_eq!(cb.into_indirect().taken_cycles(), 7);
        let sc: Terminator<u32> = Terminator::CompareBranch {
            nonzero: true,
            rn: Reg::R0,
            target: 0,
            fallthrough: 1,
        };
        assert_eq!(sc.clone().into_indirect().size_bytes(), 10);
        assert_eq!(sc.into_indirect().taken_cycles(), 8);
        assert_eq!(ft.clone().into_indirect().size_bytes(), 4);
        assert_eq!(ft.into_indirect().taken_cycles(), 4);
    }

    #[test]
    fn instrumentation_cost_deltas_match_figure4() {
        let uncond: Terminator<u32> = Terminator::Branch { target: 0 };
        let c = uncond.instrumentation_cost();
        assert_eq!((c.extra_bytes, c.extra_cycles), (2, 1));

        let cond: Terminator<u32> = Terminator::CondBranch {
            cond: Cond::Ne,
            target: 0,
            fallthrough: 1,
        };
        let c = cond.instrumentation_cost();
        assert_eq!((c.extra_bytes, c.extra_cycles), (6, 4));

        let short: Terminator<u32> = Terminator::CompareBranch {
            nonzero: false,
            rn: Reg::R1,
            target: 0,
            fallthrough: 1,
        };
        let c = short.instrumentation_cost();
        assert_eq!((c.extra_bytes, c.extra_cycles), (8, 5));

        let ft: Terminator<u32> = Terminator::FallThrough { target: 0 };
        let c = ft.instrumentation_cost();
        assert_eq!((c.extra_bytes, c.extra_cycles), (4, 4));

        let ret: Terminator<u32> = Terminator::Return;
        let c = ret.instrumentation_cost();
        assert_eq!((c.extra_bytes, c.extra_cycles), (0, 0));
    }

    #[test]
    fn into_indirect_is_idempotent_and_preserves_successors() {
        let forms: Vec<Terminator<u32>> = vec![
            Terminator::Branch { target: 1 },
            Terminator::CondBranch {
                cond: Cond::Lt,
                target: 1,
                fallthrough: 2,
            },
            Terminator::CompareBranch {
                nonzero: true,
                rn: Reg::R3,
                target: 1,
                fallthrough: 2,
            },
            Terminator::FallThrough { target: 1 },
            Terminator::Return,
        ];
        for t in forms {
            let succ_before: Vec<u32> = t.successors().into_iter().copied().collect();
            let once = t.clone().into_indirect();
            let twice = once.clone().into_indirect();
            assert_eq!(once, twice);
            let succ_after: Vec<u32> = once.successors().into_iter().copied().collect();
            assert_eq!(succ_before, succ_after);
        }
    }

    #[test]
    fn map_label_renumbers_targets() {
        let t: Terminator<u32> = Terminator::CondBranch {
            cond: Cond::Gt,
            target: 1,
            fallthrough: 2,
        };
        let mapped = t.map_label(|x| x * 10);
        assert_eq!(
            mapped,
            Terminator::CondBranch {
                cond: Cond::Gt,
                target: 10,
                fallthrough: 20
            }
        );
    }

    #[test]
    fn display_mentions_targets() {
        let t: Terminator<u32> = Terminator::IndirectBranch { target: 4 };
        assert_eq!(t.to_string(), "ldr pc, =.4");
    }
}
