//! The data-driven device database.
//!
//! The paper measures one part — an STM32F100RB on the STM32VLDISCOVERY
//! board — and for a long time this reproduction hard-coded that part's
//! memory map, power calibration and timing all over the simulator.  This
//! crate replaces those scattered constants with one typed source of truth:
//! a [`DeviceDescriptor`] per modelled microcontroller, collected in the
//! static [`DeviceDb`] registry, so that the board simulator, the placement
//! cost model and the cross-device sweeps in `flashram-core`/`flashram-bench`
//! all derive their coefficients from the same entry.
//!
//! A descriptor bundles:
//!
//! * a typed memory map ([`DeviceMemoryMap`]): base/size of the code memory
//!   (flash on every shipped entry, but [`CodeMemoryKind`] also admits
//!   FRAM/EEPROM-backed parts), base/size of SRAM and the stack reserve;
//! * per-[`InstClass`] energy tables ([`EnergyTable`]) for execution from
//!   each memory, plus the flash-data-load and sleep figures of the paper;
//! * one or more [`OperatingPoint`]s (clock, supply voltage and the
//!   [`FlashTiming`] wait-state/prefetch pair at that clock);
//! * the RAM bus-contention cycles behind the paper's `L_b` parameter.
//!
//! # The wait-state / prefetch model
//!
//! Fast cores outrun their flash: above a part-specific clock threshold
//! every flash access pays `wait_states` extra cycles.  A prefetch buffer
//! hides those stalls for *sequential* fetch but cannot help when the fetch
//! stream redirects, so the model splits the penalty in two:
//!
//! * **per-instruction penalty** — paid by every instruction fetched from
//!   flash when no prefetch buffer hides sequential stalls
//!   ([`TimingModel::flash_instr_penalty_cycles`]);
//! * **refill penalty** — paid when control transfers out of a
//!   flash-resident block (taken branches, calls, returns, the indirect
//!   long-range forms) with the prefetch buffer enabled, because the
//!   redirect discards the prefetched words
//!   ([`TimingModel::flash_refill_penalty_cycles`]).
//!
//! Zero-wait-state parts (the STM32F100 at 24 MHz, the STM32L151 entry at
//! 16 MHz) pay neither, which keeps the original single-board behaviour
//! bit-identical.  Code executing from RAM never pays either penalty — on a
//! wait-state part that asymmetry is an extra reason (beyond energy) to
//! move hot blocks to RAM, and it is what makes the cross-device frontiers
//! in `flashram-core::frontier` genuinely different per device.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use flashram_isa::{FlashTiming, InstClass, TimingModel};

/// A contiguous address range of one on-chip memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryRegion {
    /// Base address of the region.
    pub base: u32,
    /// Size of the region in bytes.
    pub size: u32,
}

/// The technology backing the code memory.
///
/// Every shipped entry is NOR flash, but the descriptor shape admits the
/// FRAM/EEPROM code stores of other deeply embedded families (those parts
/// trade wait states and energy differently, not structure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CodeMemoryKind {
    /// NOR flash (the paper's part and every current entry).
    #[default]
    Flash,
    /// Ferroelectric RAM code store (e.g. MSP430FR-class parts).
    Fram,
    /// EEPROM code store.
    Eeprom,
}

/// The typed memory map of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceMemoryMap {
    /// The code memory (what the simulator calls "flash").
    pub code: MemoryRegion,
    /// Technology of the code memory.
    pub code_kind: CodeMemoryKind,
    /// The SRAM region.
    pub ram: MemoryRegion,
    /// Bytes of SRAM reserved for the call stack.
    pub stack_reserve: u32,
}

/// Stall cycles a RAM-resident block pays when its data access contends
/// with instruction fetch on the RAM interface (the paper's `L_b` source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RamContention {
    /// Extra cycles per contended load.
    pub load_cycles: u64,
    /// Extra cycles per contended store.
    pub store_cycles: u64,
}

/// One supported clock/voltage configuration of a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Human-readable name (e.g. `"24mhz"`).
    pub name: &'static str,
    /// Core clock frequency in hertz.
    pub clock_hz: f64,
    /// Supply voltage in millivolts.
    pub vdd_mv: u32,
    /// Flash wait-state/prefetch configuration at this clock.
    pub flash: FlashTiming,
}

/// Average power (milliwatts) per instruction class while executing from
/// one memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassEnergy {
    /// ALU-class instructions (moves, adds, logic, shifts, compares).
    pub alu_mw: f64,
    /// Multiplies.
    pub mul_mw: f64,
    /// Divides.
    pub div_mw: f64,
    /// Loads.
    pub load_mw: f64,
    /// Stores.
    pub store_mw: f64,
    /// Stack pushes/pops.
    pub stack_mw: f64,
    /// `nop`s.
    pub nop_mw: f64,
    /// Branches.
    pub branch_mw: f64,
    /// Calls.
    pub call_mw: f64,
}

impl ClassEnergy {
    /// The table entry for one instruction class.
    pub fn class_mw(&self, class: InstClass) -> f64 {
        match class {
            InstClass::Alu => self.alu_mw,
            InstClass::Mul => self.mul_mw,
            InstClass::Div => self.div_mw,
            InstClass::Load => self.load_mw,
            InstClass::Store => self.store_mw,
            InstClass::Stack => self.stack_mw,
            InstClass::Nop => self.nop_mw,
            InstClass::Branch => self.branch_mw,
            InstClass::Call => self.call_mw,
        }
    }
}

/// The full per-device energy calibration (Figure 1 shape).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyTable {
    /// Per-class power while executing from flash.
    pub flash: ClassEnergy,
    /// Per-class power while executing from RAM.
    pub ram: ClassEnergy,
    /// Power of a load executing from RAM whose data lives in flash (the
    /// expensive "flash load" bar of Figure 1).
    pub ram_load_flash_data_mw: f64,
    /// Quiescent power of the sleep state (Section 7's `P_S`).
    pub sleep_mw: f64,
}

/// Everything the simulator and the cost model need to know about one
/// microcontroller.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceDescriptor {
    /// Registry key ([`DeviceDb::get`]); stable, lowercase.
    pub key: &'static str,
    /// Human-readable part name.
    pub name: &'static str,
    /// CPU core of the part (informational; all entries model the same
    /// Thumb-2-like ISA).
    pub core: &'static str,
    /// The typed memory map.
    pub memory: DeviceMemoryMap,
    /// RAM bus-contention cycles.
    pub ram_contention: RamContention,
    /// Supported clock/voltage configurations.
    pub operating_points: &'static [OperatingPoint],
    /// Index into [`DeviceDescriptor::operating_points`] the board runs at
    /// by default.
    pub default_operating_point: usize,
    /// The per-class energy calibration.
    pub energy: EnergyTable,
}

impl DeviceDescriptor {
    /// The default operating point.
    pub fn operating_point(&self) -> &'static OperatingPoint {
        &self.operating_points[self.default_operating_point]
    }

    /// The timing model at the default operating point: clock, contention
    /// and the flash wait-state/prefetch pair.
    pub fn timing_model(&self) -> TimingModel {
        let op = self.operating_point();
        TimingModel {
            clock_hz: op.clock_hz,
            ram_load_contention_cycles: self.ram_contention.load_cycles,
            ram_store_contention_cycles: self.ram_contention.store_cycles,
            flash: op.flash,
        }
    }
}

/// The STM32F100RB of the paper's STM32VLDISCOVERY board: 24 MHz
/// Cortex-M3, 64 KB flash / 8 KB SRAM, zero-wait-state flash, and the
/// Figure 1 power calibration.  This entry **is** the historical hard-coded
/// board — the simulator's `stm32f100` constructors now delegate here and
/// must stay bit-identical to the old constants.
pub static STM32F100: DeviceDescriptor = DeviceDescriptor {
    key: "stm32f100",
    name: "STM32F100RB (STM32VLDISCOVERY)",
    core: "cortex-m3",
    memory: DeviceMemoryMap {
        code: MemoryRegion {
            base: 0x0800_0000,
            size: 64 * 1024,
        },
        code_kind: CodeMemoryKind::Flash,
        ram: MemoryRegion {
            base: 0x2000_0000,
            size: 8 * 1024,
        },
        stack_reserve: 1024,
    },
    ram_contention: RamContention {
        load_cycles: 1,
        store_cycles: 1,
    },
    operating_points: &[OperatingPoint {
        name: "24mhz",
        clock_hz: 24_000_000.0,
        vdd_mv: 3300,
        flash: FlashTiming {
            wait_states: 0,
            prefetch_enabled: true,
        },
    }],
    default_operating_point: 0,
    energy: EnergyTable {
        flash: ClassEnergy {
            alu_mw: 15.2,
            mul_mw: 15.2,
            div_mw: 15.2,
            load_mw: 16.0,
            store_mw: 15.6,
            stack_mw: 15.6,
            nop_mw: 14.6,
            branch_mw: 15.0,
            call_mw: 15.0,
        },
        ram: ClassEnergy {
            alu_mw: 8.6,
            mul_mw: 8.6,
            div_mw: 8.6,
            load_mw: 9.6,
            store_mw: 9.2,
            stack_mw: 9.2,
            nop_mw: 8.0,
            branch_mw: 8.8,
            call_mw: 8.8,
        },
        ram_load_flash_data_mw: 15.0,
        sleep_mw: 3.5,
    },
};

/// A low-power Cortex-M3 (STM32L151-class): 16 MHz, still zero wait
/// states, much lower absolute power and a deeper sleep.  The zero-wait
/// reference point of the cross-device sweeps.
pub static STM32L151: DeviceDescriptor = DeviceDescriptor {
    key: "stm32l151",
    name: "STM32L151C8 (low-power)",
    core: "cortex-m3",
    memory: DeviceMemoryMap {
        code: MemoryRegion {
            base: 0x0800_0000,
            size: 64 * 1024,
        },
        code_kind: CodeMemoryKind::Flash,
        ram: MemoryRegion {
            base: 0x2000_0000,
            size: 10 * 1024,
        },
        stack_reserve: 1024,
    },
    ram_contention: RamContention {
        load_cycles: 1,
        store_cycles: 1,
    },
    operating_points: &[OperatingPoint {
        name: "16mhz",
        clock_hz: 16_000_000.0,
        vdd_mv: 3000,
        flash: FlashTiming {
            wait_states: 0,
            prefetch_enabled: false,
        },
    }],
    default_operating_point: 0,
    energy: EnergyTable {
        flash: ClassEnergy {
            alu_mw: 6.1,
            mul_mw: 6.2,
            div_mw: 6.3,
            load_mw: 6.8,
            store_mw: 6.6,
            stack_mw: 6.6,
            nop_mw: 5.8,
            branch_mw: 6.0,
            call_mw: 6.0,
        },
        ram: ClassEnergy {
            alu_mw: 3.9,
            mul_mw: 4.0,
            div_mw: 4.1,
            load_mw: 4.4,
            store_mw: 4.2,
            stack_mw: 4.2,
            nop_mw: 3.6,
            branch_mw: 3.8,
            call_mw: 3.8,
        },
        ram_load_flash_data_mw: 6.2,
        sleep_mw: 0.9,
    },
};

/// A fast Cortex-M4 (STM32F401-class): 84 MHz behind two flash wait
/// states with the prefetch buffer enabled, so sequential flash fetch is
/// full speed but every control transfer from flash pays a two-cycle
/// refill.  RAM execution pays neither — the wait-state asymmetry that
/// shifts this device's optimal placements relative to the zero-wait
/// parts.  A second, slower operating point runs the flash at zero wait
/// states.
pub static STM32F401: DeviceDescriptor = DeviceDescriptor {
    key: "stm32f401",
    name: "STM32F401RE (high-frequency)",
    core: "cortex-m4",
    memory: DeviceMemoryMap {
        code: MemoryRegion {
            base: 0x0800_0000,
            size: 256 * 1024,
        },
        code_kind: CodeMemoryKind::Flash,
        ram: MemoryRegion {
            base: 0x2000_0000,
            size: 64 * 1024,
        },
        stack_reserve: 1024,
    },
    ram_contention: RamContention {
        load_cycles: 1,
        store_cycles: 1,
    },
    operating_points: &[
        OperatingPoint {
            name: "84mhz",
            clock_hz: 84_000_000.0,
            vdd_mv: 3300,
            flash: FlashTiming {
                wait_states: 2,
                prefetch_enabled: true,
            },
        },
        OperatingPoint {
            name: "30mhz",
            clock_hz: 30_000_000.0,
            vdd_mv: 3300,
            flash: FlashTiming {
                wait_states: 0,
                prefetch_enabled: true,
            },
        },
    ],
    default_operating_point: 0,
    energy: EnergyTable {
        flash: ClassEnergy {
            alu_mw: 38.5,
            mul_mw: 39.0,
            div_mw: 39.5,
            load_mw: 41.0,
            store_mw: 40.0,
            stack_mw: 40.0,
            nop_mw: 36.0,
            branch_mw: 37.5,
            call_mw: 37.5,
        },
        ram: ClassEnergy {
            alu_mw: 24.0,
            mul_mw: 24.5,
            div_mw: 25.0,
            load_mw: 26.0,
            store_mw: 25.0,
            stack_mw: 25.0,
            nop_mw: 22.5,
            branch_mw: 23.5,
            call_mw: 23.5,
        },
        ram_load_flash_data_mw: 38.0,
        sleep_mw: 10.5,
    },
};

/// The device registry: keyed lookup plus stable iteration order.
#[derive(Debug, Clone, Copy)]
pub struct DeviceDb {
    entries: &'static [&'static DeviceDescriptor],
}

/// The built-in registry with every shipped device entry.
pub static DEVICE_DB: DeviceDb = DeviceDb {
    entries: &[&STM32F100, &STM32L151, &STM32F401],
};

impl DeviceDb {
    /// Look a device up by its registry key.
    pub fn get(&self, key: &str) -> Option<&'static DeviceDescriptor> {
        self.entries.iter().copied().find(|d| d.key == key)
    }

    /// Every entry, in registration order (the `stm32f100` reference part
    /// first).
    pub fn all(&self) -> &'static [&'static DeviceDescriptor] {
        self.entries
    }

    /// The registry keys, in registration order.
    pub fn keys(&self) -> Vec<&'static str> {
        self.entries.iter().map(|d| d.key).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashram_isa::CORTEX_M3_TIMING;

    #[test]
    fn registry_lookup_finds_every_entry() {
        assert!(DEVICE_DB.all().len() >= 3);
        for d in DEVICE_DB.all() {
            assert_eq!(DEVICE_DB.get(d.key).unwrap().key, d.key);
            assert!(d.default_operating_point < d.operating_points.len());
        }
        assert!(DEVICE_DB.get("nonexistent").is_none());
        assert_eq!(DEVICE_DB.keys()[0], "stm32f100");
    }

    #[test]
    fn stm32f100_timing_reproduces_the_historical_constant() {
        assert_eq!(STM32F100.timing_model(), CORTEX_M3_TIMING);
    }

    #[test]
    fn every_entry_charges_ram_below_flash_per_class() {
        for d in DEVICE_DB.all() {
            for class in [
                InstClass::Alu,
                InstClass::Mul,
                InstClass::Div,
                InstClass::Load,
                InstClass::Store,
                InstClass::Stack,
                InstClass::Nop,
                InstClass::Branch,
                InstClass::Call,
            ] {
                assert!(
                    d.energy.ram.class_mw(class) < d.energy.flash.class_mw(class),
                    "{}/{class:?}",
                    d.key
                );
            }
            assert!(d.energy.sleep_mw < d.energy.ram.class_mw(InstClass::Nop));
        }
    }

    #[test]
    fn the_db_spans_zero_wait_and_wait_state_parts() {
        let zero_wait = DEVICE_DB
            .all()
            .iter()
            .any(|d| d.operating_point().flash.wait_states == 0);
        let wait_state = DEVICE_DB
            .all()
            .iter()
            .any(|d| d.operating_point().flash.wait_states > 0);
        assert!(zero_wait && wait_state);
    }

    #[test]
    fn memory_maps_are_well_formed() {
        for d in DEVICE_DB.all() {
            let m = &d.memory;
            assert!(m.code.size > 0 && m.ram.size > m.stack_reserve, "{}", d.key);
            let code_end = u64::from(m.code.base) + u64::from(m.code.size);
            let ram_end = u64::from(m.ram.base) + u64::from(m.ram.size);
            assert!(code_end <= u64::from(m.ram.base) || ram_end <= u64::from(m.code.base));
        }
    }
}
