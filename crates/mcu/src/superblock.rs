//! The tiered superblock execution engine.
//!
//! The decoded engine pays per-chunk overhead on every loop iteration: the
//! budget check, the profile bump, two counter-bucket adds for the prefused
//! static charges, the op dispatch, and the exit decode.  For a hot loop all
//! of that is invariant across thousands of iterations.  This module tiers
//! execution: chunks start in the tier-0 threaded-dispatch interpreter
//! (the handler chains of [`crate::dispatch`]), and when a loop head's
//! execution count crosses `HOT_THRESHOLD` a
//! **superblock** is built for it — the loop body's chunks stitched into one
//! straight-line unit:
//!
//! * all static charges of the body (chunk charge slots, spilled
//!   `Op::Charge` ops, merged unconditional-jump costs) are prefused into
//!   **one** per-segment cycle constant and a single batched counter
//!   application per loop exit;
//! * profile bumps for every block in the body are batched the same way
//!   (applied `full_iters` at a time on exit);
//! * two-way chunk exits inside the body become **guards**: the condition is
//!   evaluated in place, the on-trace path falls through into the next
//!   segment, and the off-trace path applies the partial-iteration charges
//!   and side-exits back to the interpreter at an ordinary chunk boundary;
//! * the op stream is re-peepholed across chunk seams, so superinstruction
//!   fusion works across the merged jumps too.
//!
//! **Determinism and bit-identity.**  Tier-up is a pure function of the
//! decoded program and the run so far (a fixed execution-count threshold —
//! no wall clock, no sampling), so results are reproducible run to run and
//! across thread counts.  Bit-identity with the reference interpreter holds
//! because a superblock iteration only *starts* when
//! `total ≤ max_cycles − iter_bound`, where `Superblock::iter_bound` is a
//! static worst-case bound on the cycles one iteration can add: no budget
//! check the reference interpreter would perform inside the body could fire
//! (`total` never exceeds `max_cycles` mid-iteration), so skipping those
//! checks is unobservable.  Once `total` crosses the threshold the engine
//! falls back to tier 0, which checks at exactly the reference scheduling
//! points.  Counter-bucket adds and profile bumps are order-insensitive
//! sums, observable only at run end (a faulting run discards them), so
//! batching them is unobservable too; `total` itself is maintained exactly,
//! segment by segment.  Faults inside a superblock propagate with ops
//! executed in program order up to the faulting op, so fault identity is
//! preserved as well.

use std::collections::BTreeMap;

use flashram_isa::cond::{Cond, Flags};
use flashram_isa::TimingModel;

use crate::cpu::{CpuResult, RunError};
use crate::decode::{
    exec_op, peephole, take_exit, ChunkExit, DecodedProgram, ExecState, Op, NOT_A_HEAD,
};
use crate::dispatch::{run_ops, Ctx, ThreadedProgram};
use crate::mem::{Fault, MemError};
use crate::power::PowerModel;

/// Execution count at which a loop-head chunk is promoted to a superblock.
/// Fixed and wall-clock-free: tier-up is deterministic.
pub(crate) const HOT_THRESHOLD: u64 = 64;

/// Upper bound on the chunks one superblock walk may absorb.
const MAX_WALK_CHUNKS: usize = 64;

/// Per-run tiering observability: how much work each execution tier did.
///
/// Carried on [`RunResult`](crate::board::RunResult) by the superblock
/// engine (`tier` field); deliberately **excluded** from
/// [`RunResult::bits_eq`](crate::board::RunResult::bits_eq) — it describes
/// *how* the engine ran, not *what* the program computed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Chunks in the decoded program (the profiling universe).
    pub chunks: u32,
    /// Loop heads that crossed `HOT_THRESHOLD` and were walked.
    pub hot_heads: u32,
    /// Walks that produced a superblock.
    pub superblocks_built: u32,
    /// Walks aborted (call in body, revisit, too long) — never retried.
    pub superblocks_rejected: u32,
    /// Times execution entered a superblock.
    pub superblock_entries: u64,
    /// Full loop iterations retired inside superblocks.
    pub superblock_iterations: u64,
    /// Decoded ops retired by the tier-0 interpreter.
    pub interpreted_ops: u64,
    /// Decoded ops retired inside superblocks.
    pub superblock_ops: u64,
}

/// The condition of a guard: the decoded form of the two-way chunk exit it
/// replaced.  Evaluation matches [`take_exit`] arm for arm, including the
/// flag write of the fused compare-and-branch forms.
#[derive(Debug, Clone, Copy)]
enum GuardKind {
    /// Unconditional back-edge to the head (always on-trace).
    Always,
    Cond(Cond),
    Cmp {
        nonzero: bool,
        rn: u8,
    },
    CmpImm {
        rn: u8,
        imm: i32,
        cond: Cond,
    },
    CmpReg {
        rn: u8,
        rm: u8,
        cond: Cond,
    },
}

/// A side-exit check closing one segment of a superblock.
#[derive(Debug, Clone, Copy)]
struct Guard {
    kind: GuardKind,
    /// Whether the *taken* direction of the original exit stays on-trace.
    on_taken: bool,
    /// Branch cycles charged when staying on-trace / when side-exiting.
    on_cycles: u8,
    off_cycles: u8,
    /// Counter bucket for the branch cycles (batched, not charged inline).
    bucket: u16,
    /// Chunk index the off-trace path resumes interpretation at.
    off_target: u32,
}

/// A straight-line run of ops (one or more merged chunks) ending in a guard.
#[derive(Debug, Clone, Copy)]
struct Segment {
    op_start: u32,
    op_end: u32,
    /// All static cycles of the segment (chunk charge slots, spilled
    /// `Op::Charge` ops, merged jump costs — **not** guard cycles),
    /// pre-summed; added to the running total in one step.
    body_cycles: u64,
    guard: Guard,
}

/// A compiled hot loop: the unit of tier-1 execution.
#[derive(Clone)]
pub(crate) struct Superblock {
    /// The loop-head chunk this superblock was grown from.
    head: u32,
    /// Re-peepholed op stream of the whole body.  Segment interiors run
    /// through the inlined `exec_op` match: superblock segments are short
    /// and piping them through handler chains measured *slower* than the
    /// match inlined straight into the segment loop (a fn-pointer call
    /// per segment entry against zero calls).
    ops: Vec<Op>,
    segments: Vec<Segment>,
    /// Batched counter charges of one full iteration (statics + on-trace
    /// guard cycles), bucket-sorted.
    iter_charges: Vec<(u16, u64)>,
    /// Flat block indices bumped once per full iteration.
    iter_heads: Vec<u32>,
    /// Batched counter charges of a partial iteration side-exiting at
    /// guard `g` (statics and on-trace guards before `g`, plus guard `g`'s
    /// off-trace cycles).
    prefix_charges: Vec<Vec<(u16, u64)>>,
    /// Flat block indices bumped by a partial iteration exiting at guard `g`.
    prefix_heads: Vec<Vec<u32>>,
    /// Ops retired by a partial iteration exiting at guard `g` (stats only).
    prefix_ops: Vec<u64>,
    /// Ops retired by one full iteration (stats only).
    iter_ops: u64,
    /// Static worst-case cycles one iteration (full or partial) can add:
    /// all statics, every guard at `max(on, off)`, and every op's maximum
    /// dynamic memory charge.  The budget-check elision certificate.
    pub(crate) iter_bound: u64,
}

/// Tier state of one chunk.  Non-head chunks can never tier up and start
/// `Rejected`; head chunks start `Cold` and move to `Built` or `Rejected`
/// exactly once.
enum TierSlot {
    Cold,
    Rejected,
    Built(Box<Superblock>),
}

/// Worst-case dynamic (data-section-dependent) cycles one op can charge.
/// Statically-charged ops contribute zero — their cycles are already in the
/// segment statics.
fn op_bound(op: &Op, load_pen: u64, store_pen: u64) -> u64 {
    match op {
        Op::Load { charge, .. }
        | Op::LoadIdx { charge, .. }
        | Op::AddRegLoad { charge, .. }
        | Op::LoadAddReg { charge, .. }
        | Op::ShiftImmAddRegLoad { charge, .. }
        | Op::AddRegShiftImmAddRegLoad { charge, .. }
        | Op::MovImmMulLoad { charge, .. }
        | Op::LoadAddRegShiftImm { charge, .. }
        | Op::AddRegLoadMul { charge, .. }
        | Op::AddRegLoadMovImm { charge, .. } => {
            charge.base_cycles as u64 + if charge.contend { load_pen } else { 0 }
        }
        Op::Store { charge, .. }
        | Op::StoreIdx { charge, .. }
        | Op::AddImmMovRegStore { charge, .. } => {
            charge.base_cycles as u64 + if charge.contend { store_pen } else { 0 }
        }
        // Stripped into segment statics before this is consulted; kept total
        // for robustness.
        Op::Charge { cycles, .. } => *cycles as u64,
        _ => 0,
    }
}

/// Walk the loop body from `head` and build its superblock, or `None` if
/// the shape is not superblock-able (a call or return in the body, a
/// revisited chunk that is not the head, or a body longer than
/// [`MAX_WALK_CHUNKS`]).
///
/// The walk is static and deterministic: from each two-way exit it follows
/// the fallthrough edge (loop bodies overwhelmingly fall through) and turns
/// the other direction into a guard; unconditional jumps to unvisited
/// chunks are merged into the current segment outright.
fn build_superblock(
    prog: &DecodedProgram,
    head: u32,
    load_pen: u64,
    store_pen: u64,
) -> Option<Superblock> {
    let mut ops: Vec<Op> = Vec::new();
    let mut segments: Vec<Segment> = Vec::new();
    let mut seg_statics: Vec<BTreeMap<u16, u64>> = Vec::new();
    let mut seg_heads: Vec<Vec<u32>> = Vec::new();

    let mut cur_ops: Vec<Op> = Vec::new();
    let mut cur_statics: BTreeMap<u16, u64> = BTreeMap::new();
    let mut cur_heads: Vec<u32> = Vec::new();
    let mut visited: Vec<u32> = Vec::new();
    let mut cur = head;

    // Close the open segment with `guard`, re-peepholing its op stream
    // (charge-free, so fusion windows span the merged chunk seams).
    let mut close = |cur_ops: &mut Vec<Op>,
                     cur_statics: &mut BTreeMap<u16, u64>,
                     cur_heads: &mut Vec<u32>,
                     guard: Guard| {
        peephole(cur_ops);
        let op_start = ops.len() as u32;
        ops.append(cur_ops);
        let body_cycles = cur_statics.values().sum();
        segments.push(Segment {
            op_start,
            op_end: ops.len() as u32,
            body_cycles,
            guard,
        });
        seg_statics.push(std::mem::take(cur_statics));
        seg_heads.push(std::mem::take(cur_heads));
    };

    loop {
        if visited.len() >= MAX_WALK_CHUNKS || visited.contains(&cur) {
            return None;
        }
        visited.push(cur);
        let chunk = &prog.chunks[cur as usize];
        if chunk.block != NOT_A_HEAD {
            cur_heads.push(chunk.block);
        }
        for &(bucket, cycles) in &chunk.charges {
            if cycles != 0 {
                *cur_statics.entry(bucket).or_insert(0) += cycles as u64;
            }
        }
        for op in &prog.ops[chunk.op_start as usize..chunk.op_end as usize] {
            match *op {
                Op::Charge { bucket, cycles } => {
                    *cur_statics.entry(bucket).or_insert(0) += cycles as u64;
                }
                other => cur_ops.push(other),
            }
        }

        // Decompose the exit into a guard condition plus the common two-way
        // shape; unconditional exits are handled inline.
        let (kind, target, fallthrough, taken_cycles, not_taken_cycles, bucket) = match chunk.exit {
            // A call or return in the body: not a loop shape we compile.
            ChunkExit::Call { .. } | ChunkExit::Return { .. } => return None,
            ChunkExit::Jump {
                target,
                bucket,
                cycles,
            } => {
                if target == head {
                    // Unconditional back-edge: the loop is closed.
                    close(
                        &mut cur_ops,
                        &mut cur_statics,
                        &mut cur_heads,
                        Guard {
                            kind: GuardKind::Always,
                            on_taken: true,
                            on_cycles: cycles,
                            off_cycles: cycles,
                            bucket,
                            off_target: head,
                        },
                    );
                    break;
                }
                // Merge the jump into the running segment: its cost becomes
                // a static, its target's ops continue the straight line.
                *cur_statics.entry(bucket).or_insert(0) += cycles as u64;
                cur = target;
                continue;
            }
            ChunkExit::CondJump {
                cond,
                target,
                fallthrough,
                taken_cycles,
                not_taken_cycles,
                bucket,
            } => (
                GuardKind::Cond(cond),
                target,
                fallthrough,
                taken_cycles,
                not_taken_cycles,
                bucket,
            ),
            ChunkExit::CmpJump {
                nonzero,
                rn,
                target,
                fallthrough,
                taken_cycles,
                not_taken_cycles,
                bucket,
            } => (
                GuardKind::Cmp { nonzero, rn },
                target,
                fallthrough,
                taken_cycles,
                not_taken_cycles,
                bucket,
            ),
            ChunkExit::CmpImmCondJump {
                rn,
                imm,
                cond,
                target,
                fallthrough,
                taken_cycles,
                not_taken_cycles,
                bucket,
            } => (
                GuardKind::CmpImm { rn, imm, cond },
                target,
                fallthrough,
                taken_cycles,
                not_taken_cycles,
                bucket,
            ),
            ChunkExit::CmpRegCondJump {
                rn,
                rm,
                cond,
                target,
                fallthrough,
                taken_cycles,
                not_taken_cycles,
                bucket,
            } => (
                GuardKind::CmpReg { rn, rm, cond },
                target,
                fallthrough,
                taken_cycles,
                not_taken_cycles,
                bucket,
            ),
        };

        if target == head {
            // Taken back-edge: staying on-trace means *taking* the branch;
            // not-taken side-exits to the fallthrough.
            close(
                &mut cur_ops,
                &mut cur_statics,
                &mut cur_heads,
                Guard {
                    kind,
                    on_taken: true,
                    on_cycles: taken_cycles,
                    off_cycles: not_taken_cycles,
                    bucket,
                    off_target: fallthrough,
                },
            );
            break;
        }
        if fallthrough == head {
            // Fallthrough back-edge: staying on-trace means *not* taking it.
            close(
                &mut cur_ops,
                &mut cur_statics,
                &mut cur_heads,
                Guard {
                    kind,
                    on_taken: false,
                    on_cycles: not_taken_cycles,
                    off_cycles: taken_cycles,
                    bucket,
                    off_target: target,
                },
            );
            break;
        }
        // Interior two-way: follow the fallthrough (loop bodies
        // overwhelmingly fall through), guard the taken direction.
        close(
            &mut cur_ops,
            &mut cur_statics,
            &mut cur_heads,
            Guard {
                kind,
                on_taken: false,
                on_cycles: not_taken_cycles,
                off_cycles: taken_cycles,
                bucket,
                off_target: target,
            },
        );
        cur = fallthrough;
    }

    // Prefix data: a running merge over the segments.  After processing
    // segment `g` (statics + heads + its guard's on-trace cycles), `running`
    // holds the aggregate charges of everything retired when guard `g + 1`
    // is reached; the prefix snapshots add guard `g`'s *off*-trace cycles
    // instead.  After the last segment `running` is exactly one full
    // iteration's aggregate.
    let n = segments.len();
    let mut running: BTreeMap<u16, u64> = BTreeMap::new();
    let mut heads_run: Vec<u32> = Vec::new();
    let mut ops_run: u64 = 0;
    let mut prefix_charges = Vec::with_capacity(n);
    let mut prefix_heads = Vec::with_capacity(n);
    let mut prefix_ops = Vec::with_capacity(n);
    for g in 0..n {
        for (&bucket, &cycles) in &seg_statics[g] {
            *running.entry(bucket).or_insert(0) += cycles;
        }
        heads_run.extend_from_slice(&seg_heads[g]);
        ops_run += (segments[g].op_end - segments[g].op_start) as u64;
        let guard = segments[g].guard;
        let mut p = running.clone();
        *p.entry(guard.bucket).or_insert(0) += guard.off_cycles as u64;
        prefix_charges.push(p.into_iter().collect::<Vec<_>>());
        prefix_heads.push(heads_run.clone());
        prefix_ops.push(ops_run);
        *running.entry(guard.bucket).or_insert(0) += guard.on_cycles as u64;
    }
    let iter_ops = ops_run;
    let iter_heads = heads_run;
    let iter_charges: Vec<(u16, u64)> = running.into_iter().collect();

    // The budget-check elision certificate: one iteration — full or partial
    // — can add at most this many cycles.
    let mut iter_bound: u64 = 0;
    for seg in &segments {
        iter_bound += seg.body_cycles;
        iter_bound += seg.guard.on_cycles.max(seg.guard.off_cycles) as u64;
    }
    for op in &ops {
        iter_bound += op_bound(op, load_pen, store_pen);
    }

    Some(Superblock {
        head,
        ops,
        segments,
        iter_charges,
        iter_heads,
        prefix_charges,
        prefix_heads,
        prefix_ops,
        iter_ops,
        iter_bound,
    })
}

/// Execute one superblock entry: iterate the compiled loop until the budget
/// nears exhaustion or a guard side-exits, then apply the batched charges
/// and hand back the chunk to resume interpretation at.
///
/// The caller guarantees `*total <= threshold` on entry, where
/// `threshold = max_cycles - iter_bound` — see the module docs for why that
/// makes the elided per-chunk budget checks unobservable.
fn run_superblock(
    sb: &Superblock,
    cx: &mut Ctx<'_>,
    threshold: u64,
    stats: &mut TierStats,
) -> Result<u32, Fault> {
    stats.superblock_entries += 1;
    let mut full_iters: u64 = 0;
    let next = 'run: loop {
        if cx.total > threshold {
            // The next iteration could outrun the budget: tier down.  The
            // head is a chunk boundary, so the interpreter re-checks there
            // with exactly the reference semantics.
            break 'run sb.head;
        }
        for (g, seg) in sb.segments.iter().enumerate() {
            cx.total += seg.body_cycles;
            for op in sb.ops[seg.op_start as usize..seg.op_end as usize]
                .iter()
                .copied()
            {
                // A fault aborts the run with all counters discarded, so
                // the pending batched charges are immaterial; ops have
                // retired in program order, so fault identity is exact.
                exec_op(op, cx.lists, &mut cx.st, &mut cx.total)?;
            }
            let taken = match seg.guard.kind {
                GuardKind::Always => true,
                GuardKind::Cond(cond) => cond.holds(cx.st.flags),
                GuardKind::Cmp { nonzero, rn } => (cx.st.r(rn) != 0) == nonzero,
                GuardKind::CmpImm { rn, imm, cond } => {
                    cx.st.flags = Flags::from_cmp(cx.st.r(rn), imm);
                    cond.holds(cx.st.flags)
                }
                GuardKind::CmpReg { rn, rm, cond } => {
                    cx.st.flags = Flags::from_cmp(cx.st.r(rn), cx.st.r(rm));
                    cond.holds(cx.st.flags)
                }
            };
            if taken == seg.guard.on_taken {
                cx.total += seg.guard.on_cycles as u64;
            } else {
                // Side exit: apply this partial iteration's batched charges
                // and resume interpretation off-trace.
                cx.total += seg.guard.off_cycles as u64;
                for &(bucket, cycles) in &sb.prefix_charges[g] {
                    cx.st.counters.add_bucket(bucket, cycles);
                }
                for &h in &sb.prefix_heads[g] {
                    cx.st.block_counts[h as usize] += 1;
                }
                stats.superblock_ops += sb.prefix_ops[g];
                break 'run seg.guard.off_target;
            }
        }
        full_iters += 1;
    };
    if full_iters > 0 {
        for &(bucket, cycles) in &sb.iter_charges {
            cx.st.counters.add_bucket(bucket, cycles * full_iters);
        }
        for &h in &sb.iter_heads {
            cx.st.block_counts[h as usize] += full_iters;
        }
        stats.superblock_ops += sb.iter_ops * full_iters;
        stats.superblock_iterations += full_iters;
    }
    Ok(next)
}

/// Execute a program under the tiered engine: tier-0 threaded-dispatch
/// interpretation with deterministic promotion of hot loop heads to
/// superblocks.
///
/// Bit-identical to the reference interpreter (see the module docs); also
/// returns the run's [`TierStats`].
///
/// # Errors
///
/// Returns a [`RunError`] on memory faults, call-stack overflow, or when
/// `max_cycles` is exceeded — with `executed` bit-exact against the
/// reference.
pub(crate) fn execute_tiered(
    tp: &ThreadedProgram,
    power: &PowerModel,
    timing: &TimingModel,
    max_cycles: u64,
) -> Result<(CpuResult, TierStats), RunError> {
    let prog = &tp.base;
    let mut cx = Ctx {
        st: ExecState::new(prog, timing),
        total: 0,
        lists: &prog.reg_lists,
    };
    let mut pc = prog.entry_chunk;
    let mut stats = TierStats {
        chunks: prog.chunks.len() as u32,
        ..TierStats::default()
    };
    let mut slots: Vec<TierSlot> = prog
        .chunks
        .iter()
        .map(|c| {
            if c.block != NOT_A_HEAD {
                TierSlot::Cold
            } else {
                TierSlot::Rejected
            }
        })
        .collect();

    loop {
        if cx.total > max_cycles {
            return Err(RunError::CycleLimit {
                limit: max_cycles,
                executed: cx.total,
            });
        }
        let chunk = &prog.chunks[pc as usize];

        // Fast path: most chunks are `Rejected` (every non-head is
        // premarked, and so is every head whose walk aborted), so the
        // tier machinery costs one discriminant load per chunk.
        if !matches!(slots[pc as usize], TierSlot::Rejected) {
            // Deterministic tier-up: promote a cold head the moment its
            // block count crosses the threshold.  The count is exact at
            // every chunk entry (superblock exits apply their batches
            // before returning).
            if matches!(slots[pc as usize], TierSlot::Cold)
                && chunk.block != NOT_A_HEAD
                && cx.st.block_counts[chunk.block as usize] >= HOT_THRESHOLD
            {
                stats.hot_heads += 1;
                match build_superblock(prog, pc, cx.st.load_pen, cx.st.store_pen) {
                    Some(sb) => {
                        stats.superblocks_built += 1;
                        slots[pc as usize] = TierSlot::Built(Box::new(sb));
                    }
                    None => {
                        stats.superblocks_rejected += 1;
                        slots[pc as usize] = TierSlot::Rejected;
                    }
                }
            }

            if let TierSlot::Built(sb) = &slots[pc as usize] {
                if let Some(threshold) = max_cycles.checked_sub(sb.iter_bound) {
                    if cx.total <= threshold {
                        match run_superblock(sb, &mut cx, threshold, &mut stats) {
                            Ok(next) => {
                                pc = next;
                                continue;
                            }
                            Err(fault) => return Err(RunError::Memory(MemError::from(fault))),
                        }
                    }
                }
                // Budget too close (or budget smaller than one iteration):
                // interpret this chunk at tier 0 — exact reference checks.
            }
        }

        if chunk.block != NOT_A_HEAD {
            cx.st.block_counts[chunk.block as usize] += 1;
        }
        cx.st
            .counters
            .add_bucket(chunk.charges[0].0, chunk.charges[0].1 as u64);
        cx.st
            .counters
            .add_bucket(chunk.charges[1].0, chunk.charges[1].1 as u64);
        cx.total += chunk.charges[0].1 as u64 + chunk.charges[1].1 as u64;
        stats.interpreted_ops += (chunk.op_end - chunk.op_start) as u64;
        if let Err(fault) = run_ops(
            &tp.tops[chunk.op_start as usize..chunk.op_end as usize],
            &mut cx,
        ) {
            return Err(RunError::Memory(MemError::from(fault)));
        }
        match take_exit(&chunk.exit, &mut cx.st, &mut cx.total, pc)? {
            Some(next) => pc = next,
            None => {
                let Ctx { st, total, .. } = cx;
                return Ok((prog.assemble(st, total, power, timing), stats));
            }
        }
    }
}
