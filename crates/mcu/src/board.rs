//! The measurement board: load a program, run it, report energy.
//!
//! [`Board`] plays the role of the power-instrumented STM32VLDISCOVERY board
//! of the paper: it owns the memory map, the timing model and the power
//! calibration, and produces per-run measurements (time, energy, average
//! power, execution profile).  The [`SleepScenario`] helper implements the
//! Section 7 periodic-sensing energy accounting
//! `E = E_active + P_sleep · (T − T_active)`.

use flashram_device::DeviceDescriptor;
use flashram_ir::{MachineProgram, ProfileData};
use flashram_isa::TimingModel;

use crate::cpu::{Cpu, CpuResult, RunError};
use crate::decode::DecodedProgram;
use crate::dispatch::ThreadedProgram;
use crate::energy::EnergyMeter;
use crate::mem::{DataLayout, Memory, MemoryMap};
use crate::power::PowerModel;
use crate::superblock::{execute_tiered, TierStats};

/// Per-run configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Abort the run after this many cycles.
    pub max_cycles: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_cycles: 400_000_000,
        }
    }
}

/// A completed measurement.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The program's return value (checksum, for the benchmark suite).
    pub return_value: i32,
    /// Cycle and energy accounting.
    pub meter: EnergyMeter,
    /// Execution time in seconds.
    pub time_s: f64,
    /// Energy in millijoules.
    pub energy_mj: f64,
    /// Average power in milliwatts.
    pub avg_power_mw: f64,
    /// Per-block execution counts.
    pub profile: ProfileData,
    /// Where data and code ended up.
    pub layout: DataLayout,
    /// Tiering observability (superblock engine only, `None` elsewhere).
    /// Describes *how* the engine ran, not *what* the program computed, so
    /// it is excluded from [`RunResult::bits_eq`].
    pub tier: Option<TierStats>,
}

impl RunResult {
    /// Total cycles executed.
    pub fn cycles(&self) -> u64 {
        self.meter.cycles
    }

    /// Bitwise equality across every field — float fields compared by bit
    /// pattern, not by value.
    ///
    /// This is the relation the simulator's determinism guarantees are
    /// stated in: every engine (decoded, threaded, superblock) versus the
    /// reference interpreter, and batched versus sequential execution, must
    /// agree under `bits_eq`.  The differential test suites and the
    /// `sim_perf` bit-identity verdict all share this one definition.  The
    /// [`RunResult::tier`] observability field is deliberately excluded —
    /// it reports engine internals, not program-observable results.
    pub fn bits_eq(&self, other: &RunResult) -> bool {
        self.return_value == other.return_value
            && self.meter == other.meter
            && self.time_s.to_bits() == other.time_s.to_bits()
            && self.energy_mj.to_bits() == other.energy_mj.to_bits()
            && self.avg_power_mw.to_bits() == other.avg_power_mw.to_bits()
            && self.profile == other.profile
            && self.layout == other.layout
    }
}

/// One of the simulator's execution engines.
///
/// All four are observably bit-identical (under [`RunResult::bits_eq`]) for
/// every valid program; they differ only in throughput:
///
/// * [`Engine::Reference`] — the IR-walking interpreter
///   ([`crate::cpu::Cpu`]), the semantics oracle;
/// * [`Engine::Decoded`] — the predecoded flat-op engine with a central
///   match dispatch ([`crate::decode`]);
/// * [`Engine::Threaded`] — the same decoded form driven by per-op handler
///   fn-pointers with continuation-passing dispatch ([`crate::dispatch`]);
/// * [`Engine::Superblock`] — the tiered engine: match-dispatch tier 0 plus
///   deterministic promotion of hot loops into straight-line superblocks
///   ([`crate::superblock`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// IR-walking reference interpreter.
    Reference,
    /// Predecoded flat-op engine, central match dispatch.
    Decoded,
    /// Threaded dispatch over the decoded form.
    Threaded,
    /// Tiered interpreter + superblock compilation of hot loops.
    Superblock,
}

impl Engine {
    /// Every engine, reference first.
    pub const ALL: [Engine; 4] = [
        Engine::Reference,
        Engine::Decoded,
        Engine::Threaded,
        Engine::Superblock,
    ];

    /// Stable lowercase name (used in benchmark reports).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Reference => "reference",
            Engine::Decoded => "decoded",
            Engine::Threaded => "threaded",
            Engine::Superblock => "superblock",
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The simulated measurement board.
#[derive(Debug, Clone, PartialEq)]
pub struct Board {
    /// Address space of the SoC.
    pub map: MemoryMap,
    /// Power calibration.
    pub power: PowerModel,
    /// Clock and contention model.
    pub timing: TimingModel,
}

impl Board {
    /// A board simulating the given device-database entry at its default
    /// operating point: memory map, flash wait-state/prefetch timing and
    /// power calibration all derive from the descriptor.
    pub fn new(desc: &DeviceDescriptor) -> Board {
        Board {
            map: MemoryMap::from_descriptor(desc),
            power: PowerModel::from_descriptor(desc),
            timing: desc.timing_model(),
        }
    }

    /// The STM32VLDISCOVERY-like configuration used throughout the
    /// evaluation: STM32F100RB memory map, 24 MHz core, Figure 1 power
    /// calibration (the `stm32f100` entry of the device database).
    pub fn stm32vldiscovery() -> Board {
        Board::new(&flashram_device::STM32F100)
    }

    /// Run a program with the default configuration.
    ///
    /// The program is lowered once by the decoded execution engine
    /// ([`crate::decode`]) and executed in its flattened form; use
    /// [`Board::decode`] + [`Board::run_decoded`] to amortize the lowering
    /// over many runs, and [`Board::run_reference`] for the IR-walking
    /// reference interpreter.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] if the program does not fit the part, is
    /// structurally malformed (reported eagerly, at decode time), faults,
    /// or exceeds the cycle budget.
    pub fn run(&self, program: &MachineProgram) -> Result<RunResult, RunError> {
        self.run_with_config(program, &RunConfig::default())
    }

    /// Run a program with an explicit configuration.
    ///
    /// # Errors
    ///
    /// See [`Board::run`].
    pub fn run_with_config(
        &self,
        program: &MachineProgram,
        config: &RunConfig,
    ) -> Result<RunResult, RunError> {
        let decoded = self.decode(program)?;
        self.run_decoded(&decoded, config)
    }

    /// Lower a program into its decoded form (flattened ops, resolved
    /// symbols, prefused charges) for this board's memory map and timing
    /// model.
    ///
    /// The result can be executed any number of times with
    /// [`Board::run_decoded`]; decoding is the per-program work,
    /// [`Board::run_decoded`] is the per-run work.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Memory`] when the program image does not fit the
    /// part and [`RunError::BadProgram`] when it is structurally broken
    /// (dangling literal symbols, out-of-range callees or branch targets).
    pub fn decode(&self, program: &MachineProgram) -> Result<DecodedProgram, RunError> {
        let (memory, layout) = Memory::load(program, self.map)?;
        Ok(DecodedProgram::decode(
            program,
            memory,
            layout,
            &self.timing,
        )?)
    }

    /// Run an already-decoded program with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] on memory faults, call-stack overflow, or
    /// when the cycle budget is exceeded.
    pub fn run_decoded(
        &self,
        decoded: &DecodedProgram,
        config: &RunConfig,
    ) -> Result<RunResult, RunError> {
        let out = decoded.execute(&self.power, &self.timing, config.max_cycles)?;
        Ok(self.finish_run(out, decoded.layout().clone()))
    }

    /// Resolve the threaded-dispatch handler table for a program (decode
    /// plus handler resolution; the per-program work for
    /// [`Board::run_threaded`]).
    ///
    /// # Errors
    ///
    /// See [`Board::decode`].
    pub fn prepare_threaded(&self, program: &MachineProgram) -> Result<ThreadedProgram, RunError> {
        Ok(ThreadedProgram::build(self.decode(program)?))
    }

    /// Run an already-prepared program on the threaded-dispatch engine.
    ///
    /// # Errors
    ///
    /// See [`Board::run_decoded`].
    pub fn run_threaded(
        &self,
        threaded: &ThreadedProgram,
        config: &RunConfig,
    ) -> Result<RunResult, RunError> {
        let out = threaded.execute(&self.power, &self.timing, config.max_cycles)?;
        Ok(self.finish_run(out, threaded.base().layout().clone()))
    }

    /// Run an already-prepared program on the tiered superblock engine
    /// (threaded-dispatch tier 0 with hot loops promoted to superblocks —
    /// the handler table doubles as the superblock tier's substrate).
    ///
    /// The returned result carries [`RunResult::tier`] observability.
    ///
    /// # Errors
    ///
    /// See [`Board::run_decoded`].
    pub fn run_superblock(
        &self,
        threaded: &ThreadedProgram,
        config: &RunConfig,
    ) -> Result<RunResult, RunError> {
        let (out, stats) = execute_tiered(threaded, &self.power, &self.timing, config.max_cycles)?;
        let mut result = self.finish_run(out, threaded.base().layout().clone());
        result.tier = Some(stats);
        Ok(result)
    }

    /// Run a program on the named engine — the uniform entry point the
    /// differential suites and `sim_perf` fan out over.
    ///
    /// # Errors
    ///
    /// See [`Board::run`].
    pub fn run_with_engine(
        &self,
        program: &MachineProgram,
        config: &RunConfig,
        engine: Engine,
    ) -> Result<RunResult, RunError> {
        match engine {
            Engine::Reference => self.run_reference_with_config(program, config),
            Engine::Decoded => self.run_with_config(program, config),
            Engine::Threaded => {
                let threaded = self.prepare_threaded(program)?;
                self.run_threaded(&threaded, config)
            }
            Engine::Superblock => {
                let threaded = self.prepare_threaded(program)?;
                self.run_superblock(&threaded, config)
            }
        }
    }

    /// Run a program on the IR-walking reference interpreter
    /// ([`crate::cpu::Cpu`]) with the default configuration.
    ///
    /// The decoded engine behind [`Board::run`] is held bit-identical to
    /// this one by the differential test suite; keep using this entry point
    /// where the per-instruction reference semantics are the point (e.g.
    /// one side of a differential test).
    ///
    /// # Errors
    ///
    /// See [`Board::run`].
    pub fn run_reference(&self, program: &MachineProgram) -> Result<RunResult, RunError> {
        self.run_reference_with_config(program, &RunConfig::default())
    }

    /// Run a program on the reference interpreter with an explicit
    /// configuration.
    ///
    /// # Errors
    ///
    /// See [`Board::run`].
    pub fn run_reference_with_config(
        &self,
        program: &MachineProgram,
        config: &RunConfig,
    ) -> Result<RunResult, RunError> {
        let (memory, layout) = Memory::load(program, self.map)?;
        let cpu = Cpu::new(
            program,
            memory,
            layout.clone(),
            &self.power,
            &self.timing,
            config.max_cycles,
        );
        let out = cpu.run()?;
        Ok(self.finish_run(out, layout))
    }

    /// Fold a completed CPU run into the reported [`RunResult`].
    fn finish_run(&self, out: CpuResult, layout: DataLayout) -> RunResult {
        let time_s = out.meter.time_s(&self.timing);
        let energy_mj = out.meter.energy_mj();
        let avg_power_mw = out.meter.avg_power_mw(&self.timing);
        RunResult {
            return_value: out.return_value,
            meter: out.meter,
            time_s,
            energy_mj,
            avg_power_mw,
            profile: out.profile,
            layout,
            tier: None,
        }
    }

    /// The spare RAM a program leaves for relocated code, in bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] if the program does not fit the part at all.
    pub fn spare_ram(&self, program: &MachineProgram) -> Result<u32, RunError> {
        let (_, layout) = Memory::load(program, self.map)?;
        Ok(layout.ram_spare(&self.map) + layout.ram_code_bytes)
    }
}

impl Default for Board {
    fn default() -> Self {
        Board::stm32vldiscovery()
    }
}

/// The periodic-sensing application model of Section 7: the device wakes
/// every `period_s` seconds, runs the measured active region, and sleeps for
/// the rest of the period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SleepScenario {
    /// The period `T` between activations, in seconds.
    pub period_s: f64,
    /// Quiescent (sleep) power in milliwatts (`P_S`, 3.5 mW in the paper).
    pub sleep_power_mw: f64,
}

impl SleepScenario {
    /// A scenario with the paper's sleep power.
    pub fn with_period(period_s: f64) -> SleepScenario {
        SleepScenario {
            period_s,
            sleep_power_mw: PowerModel::stm32f100().sleep_mw,
        }
    }

    /// Total energy for one period, in millijoules:
    /// `E = E_active + P_S · (T − T_active)` (Equation 10 of the paper).
    ///
    /// When the active region is longer than the period the device never
    /// sleeps and the active energy is returned unchanged.
    pub fn total_energy_mj(&self, active_energy_mj: f64, active_time_s: f64) -> f64 {
        let sleep_time = (self.period_s - active_time_s).max(0.0);
        active_energy_mj + self.sleep_power_mw * sleep_time
    }

    /// Energy saved per period by an optimization that scales the active
    /// region's energy by `k_e` and its time by `k_t`
    /// (Equation 12 of the paper).
    pub fn energy_saved_mj(
        &self,
        base_energy_mj: f64,
        base_time_s: f64,
        k_e: f64,
        k_t: f64,
    ) -> f64 {
        base_energy_mj * (1.0 - k_e) + self.sleep_power_mw * base_time_s * (k_t - 1.0)
    }

    /// The battery-life extension factor: the ratio of per-period energy
    /// before and after the optimization.  A value of 1.32 means 32 % longer
    /// battery life for the same battery.
    pub fn battery_life_extension(
        &self,
        base_energy_mj: f64,
        base_time_s: f64,
        optimized_energy_mj: f64,
        optimized_time_s: f64,
    ) -> f64 {
        let before = self.total_energy_mj(base_energy_mj, base_time_s);
        let after = self.total_energy_mj(optimized_energy_mj, optimized_time_s);
        if after <= 0.0 {
            1.0
        } else {
            before / after
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashram_ir::Section;
    use flashram_minicc::{compile_program, OptLevel, SourceUnit};

    fn board() -> Board {
        Board::stm32vldiscovery()
    }

    fn compile(src: &str, opt: OptLevel) -> MachineProgram {
        compile_program(&[SourceUnit::application(src)], opt).unwrap()
    }

    #[test]
    fn runs_a_simple_program_and_returns_its_value() {
        let prog = compile("int main() { return 7 * 6; }", OptLevel::O1);
        let r = board().run(&prog).unwrap();
        assert_eq!(r.return_value, 42);
        assert!(r.cycles() > 0);
        assert!(r.energy_mj > 0.0);
        assert!(
            r.avg_power_mw > 10.0,
            "flash execution should be around 15 mW"
        );
    }

    #[test]
    fn computes_loops_and_arithmetic_correctly() {
        let src = "
            int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
            int main() {
                int s = 0;
                for (int i = 1; i <= 10; i++) { s += i; }
                int q = 1000 / 8;
                int r = 1000 % 7;
                unsigned u = 0xffffffff;
                u = u >> 4;
                return s + fact(5) + q + r + (int)(u & 0xff);
            }
        ";
        for level in OptLevel::ALL {
            let prog = compile(src, level);
            let r = board().run(&prog).unwrap();
            let expected = 55 + 120 + 125 + 6 + 0xff;
            assert_eq!(r.return_value, expected, "wrong result at {level}");
        }
    }

    #[test]
    fn arrays_globals_and_bytes_behave_like_memory() {
        let src = "
            int table[5] = {10, 20, 30, 40, 50};
            const char key[4] = {1, 2, 3, 4};
            int main() {
                int local[4];
                int s = 0;
                for (int i = 0; i < 4; i++) { local[i] = table[i] + key[i]; }
                table[0] = 99;
                for (int i = 0; i < 4; i++) { s += local[i]; }
                return s + table[0];
            }
        ";
        for level in [OptLevel::O0, OptLevel::O2] {
            let prog = compile(src, level);
            let r = board().run(&prog).unwrap();
            assert_eq!(
                r.return_value,
                10 + 20 + 30 + 40 + 1 + 2 + 3 + 4 + 99,
                "{level}"
            );
        }
    }

    #[test]
    fn all_optimization_levels_agree_on_results() {
        let src = "
            int gcd(int a, int b) { while (b != 0) { int t = a % b; a = b; b = t; } return a; }
            int main() {
                int acc = 0;
                for (int i = 1; i < 40; i++) { acc += gcd(i * 7, i + 13); }
                return acc;
            }
        ";
        let reference = board()
            .run(&compile(src, OptLevel::O0))
            .unwrap()
            .return_value;
        for level in OptLevel::ALL {
            let r = board().run(&compile(src, level)).unwrap();
            assert_eq!(r.return_value, reference, "{level} diverges from O0");
        }
    }

    #[test]
    fn o0_takes_more_cycles_than_o2() {
        let src =
            "int main() { int s = 0; for (int i = 0; i < 200; i++) { s += i * 3; } return s; }";
        let slow = board().run(&compile(src, OptLevel::O0)).unwrap();
        let fast = board().run(&compile(src, OptLevel::O2)).unwrap();
        assert_eq!(slow.return_value, fast.return_value);
        assert!(
            slow.cycles() > fast.cycles(),
            "O0 {} cycles should exceed O2 {}",
            slow.cycles(),
            fast.cycles()
        );
    }

    #[test]
    fn moving_hot_code_to_ram_lowers_average_power() {
        let src = "int main() { int s = 0; for (int i = 0; i < 2000; i++) { s += i; } return s; }";
        let prog = compile(src, OptLevel::O1);
        let base = board().run(&prog).unwrap();
        // Relocate every block of main into RAM (without instrumentation —
        // this isolates the power effect the optimizer exploits).
        let mut in_ram = prog.clone();
        let main_index = in_ram.function_index("main").unwrap().index();
        for b in &mut in_ram.functions[main_index].blocks {
            b.section = Section::Ram;
        }
        let relocated = board().run(&in_ram).unwrap();
        assert_eq!(base.return_value, relocated.return_value);
        assert!(
            relocated.avg_power_mw < base.avg_power_mw * 0.75,
            "RAM execution should cut average power: {} vs {}",
            relocated.avg_power_mw,
            base.avg_power_mw
        );
        assert!(relocated.energy_mj < base.energy_mj);
    }

    #[test]
    fn profile_counts_loop_blocks() {
        let src = "int main() { int s = 0; for (int i = 0; i < 50; i++) { s += i; } return s; }";
        let prog = compile(src, OptLevel::O1);
        let r = board().run(&prog).unwrap();
        let hottest = r.profile.hottest_block().expect("some block executed");
        assert!(
            hottest.1 >= 50,
            "loop body should run at least 50 times, got {}",
            hottest.1
        );
    }

    #[test]
    fn runaway_programs_hit_the_cycle_limit() {
        let prog = compile("int main() { while (1) { } return 0; }", OptLevel::O1);
        let err = board()
            .run_with_config(&prog, &RunConfig { max_cycles: 10_000 })
            .unwrap_err();
        let RunError::CycleLimit { limit, executed } = err else {
            panic!("expected CycleLimit, got {err:?}");
        };
        assert_eq!(limit, 10_000);
        // The check fires between blocks, so the overshoot is bounded by one
        // block of a tight loop — not by megabytes of drift.
        assert!(
            executed > limit && executed < limit + 1_000,
            "executed {executed} should sit just past the {limit} budget"
        );
    }

    #[test]
    fn sleep_scenario_reproduces_equation_12() {
        let s = SleepScenario {
            period_s: 10.0,
            sleep_power_mw: 3.5,
        };
        // Paper's fdct numbers: E0 = 16.9 mJ, TA = 1.18 s, ke = 0.825, kt = 1.33.
        let saved = s.energy_saved_mj(16.9, 1.18, 0.825, 1.33);
        assert!(
            (saved - 4.32).abs() < 0.05,
            "expected ≈4.32 mJ, got {saved}"
        );
        // Same-energy/longer-time still saves energy overall (Figure 8).
        let saved_same_energy = s.energy_saved_mj(16.9, 1.18, 1.0, 1.33);
        assert!(saved_same_energy > 0.0);
        // Total energy accounting.
        let base_total = s.total_energy_mj(16.9, 1.18);
        assert!((base_total - (16.9 + 3.5 * (10.0 - 1.18))).abs() < 1e-9);
    }

    #[test]
    fn battery_life_extension_is_ratio_of_period_energies() {
        let s = SleepScenario::with_period(2.0);
        let ext = s.battery_life_extension(16.9, 1.18, 0.825 * 16.9, 1.33 * 1.18);
        assert!(
            ext > 1.0,
            "optimized run must extend battery life, got {ext}"
        );
    }

    #[test]
    fn spare_ram_reflects_data_usage() {
        let small = compile("int main() { return 1; }", OptLevel::O1);
        let big = compile(
            "int buf[1024]; int main() { buf[0] = 1; return buf[0]; }",
            OptLevel::O1,
        );
        let b = board();
        let spare_small = b.spare_ram(&small).unwrap();
        let spare_big = b.spare_ram(&big).unwrap();
        assert!(spare_small > spare_big);
        assert_eq!(spare_small - spare_big, 4096);
    }
}
