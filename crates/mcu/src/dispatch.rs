//! The threaded-dispatch execution engine.
//!
//! The decoded engine ([`crate::decode`]) executes the flat op array through
//! one central `match` — a single indirect branch (the jump table) that every
//! retired op funnels through, which is exactly the branch the host's
//! predictor cannot learn: its target history is the op stream itself.  This
//! module *threads* the dispatch instead: at build time every decoded op is
//! paired with a handler fn-pointer (`TOp`), and each handler executes its
//! op and then **calls the next op's handler directly** (continuation-passing
//! over the op slice).  There is no central dispatch point; every call site
//! in the chain is its own indirect branch with its own predictor slot, so a
//! stable op sequence predicts perfectly after the first iteration of a loop.
//!
//! Handler bodies mirror the decoded engine's `exec_op` arm for arm — that match
//! stays the single *documented* source of op semantics, and the equivalence
//! suites (`decoded_equivalence`, `decoded_differential`, `device_proptest`)
//! hold the two in lockstep bit-for-bit.  Everything outside the op bodies —
//! chunk scheduling, budget checks, exits, the result fold — is shared with
//! the decoded engine (`take_exit`, `DecodedProgram::assemble`), so the
//! engines cannot drift there by construction.
//!
//! Chains are bounded: a chunk's op slice is dispatched in sub-slices of at
//! most `CHAIN` ops, so the handler call depth never exceeds `CHAIN`
//! frames regardless of how long a straight-line block is.

use flashram_isa::cond::Flags;
use flashram_isa::{MemWidth, Reg, ShiftOp, TimingModel};

use crate::cpu::{shift, CpuResult, RunError};
use crate::decode::{take_exit, DecodedProgram, ExecState, Op, NOT_A_HEAD};
use crate::mem::{Fault, MemError};
use crate::power::PowerModel;

/// Maximum handler chain length before the driver re-enters the dispatch
/// loop.  Bounds stack depth: handlers recurse at most this many frames.
const CHAIN: usize = 256;

/// A decoded op paired with its handler: the unit of threaded dispatch.
#[derive(Clone, Copy)]
pub(crate) struct TOp {
    h: Handler,
    op: Op,
}

/// Per-run execution context threaded through the handler chain.  Also the
/// execution state of the tiered superblock engine, which drives chunk
/// interiors and superblock segments through the same handler chains.
pub(crate) struct Ctx<'a> {
    pub(crate) st: ExecState,
    pub(crate) total: u64,
    pub(crate) lists: &'a [Reg],
}

/// One op handler: executes `seg[i]` and chains to `seg[i + 1]`.
type Handler = for<'a> fn(&[TOp], usize, &mut Ctx<'a>) -> Result<(), Fault>;

/// Chain to the next handler in the sub-slice, or finish it.
#[inline(always)]
fn chain(seg: &[TOp], i: usize, cx: &mut Ctx<'_>) -> Result<(), Fault> {
    match seg.get(i + 1) {
        Some(t) => (t.h)(seg, i + 1, cx),
        None => Ok(()),
    }
}

/// Dispatch a full op slice through bounded handler chains.
#[inline(always)]
pub(crate) fn run_ops(tops: &[TOp], cx: &mut Ctx<'_>) -> Result<(), Fault> {
    for seg in tops.chunks(CHAIN) {
        (seg[0].h)(seg, 0, cx)?;
    }
    Ok(())
}

/// Resolve the handler table for an op slice.
pub(crate) fn table(ops: &[Op]) -> Vec<TOp> {
    ops.iter()
        .map(|op| TOp {
            h: handler_of(op),
            op: *op,
        })
        .collect()
}

// One handler per op variant, plus the total `handler_of` mapping, generated
// together so neither can fall out of sync with the other.  The bodies are
// line-for-line transcriptions of the `exec_op` arms in `decode.rs`; change
// them **there first**, then mirror here — the differential suites will
// catch any divergence.
macro_rules! handlers {
    ($( $name:ident : $Variant:ident { $($pat:tt)* } => |$cx:ident| $body:block )*) => {
        $(
            fn $name(seg: &[TOp], i: usize, $cx: &mut Ctx<'_>) -> Result<(), Fault> {
                let Op::$Variant { $($pat)* } = seg[i].op else {
                    unreachable!("threaded dispatch: op/handler mismatch");
                };
                $body
                chain(seg, i, $cx)
            }
        )*

        /// The handler for one decoded op, resolved once at build time.
        fn handler_of(op: &Op) -> Handler {
            match op {
                $( Op::$Variant { .. } => $name, )*
            }
        }
    };
}

handlers! {
    h_charge: Charge { bucket, cycles } => |cx| {
        cx.st.counters.add_bucket(bucket, cycles as u64);
        cx.total += cycles as u64;
    }
    h_mov_imm: MovImm { rd, imm } => |cx| {
        cx.st.set_r(rd, imm);
    }
    h_mov_reg: MovReg { rd, rm } => |cx| {
        cx.st.set_r(rd, cx.st.r(rm));
    }
    h_mov_cond: MovCond { cond, rd, imm } => |cx| {
        if cond.holds(cx.st.flags) {
            cx.st.set_r(rd, imm);
        }
    }
    h_add_imm: AddImm { rd, rn, imm } => |cx| {
        cx.st.set_r(rd, cx.st.r(rn).wrapping_add(imm));
    }
    h_add_reg: AddReg { rd, rn, rm } => |cx| {
        cx.st.set_r(rd, cx.st.r(rn).wrapping_add(cx.st.r(rm)));
    }
    h_sub_imm: SubImm { rd, rn, imm } => |cx| {
        cx.st.set_r(rd, cx.st.r(rn).wrapping_sub(imm));
    }
    h_sub_reg: SubReg { rd, rn, rm } => |cx| {
        cx.st.set_r(rd, cx.st.r(rn).wrapping_sub(cx.st.r(rm)));
    }
    h_rsb_imm: RsbImm { rd, rn, imm } => |cx| {
        cx.st.set_r(rd, imm.wrapping_sub(cx.st.r(rn)));
    }
    h_mul: Mul { rd, rn, rm } => |cx| {
        cx.st.set_r(rd, cx.st.r(rn).wrapping_mul(cx.st.r(rm)));
    }
    h_sdiv: Sdiv { rd, rn, rm } => |cx| {
        let divisor = cx.st.r(rm);
        let v = if divisor == 0 {
            0
        } else {
            cx.st.r(rn).wrapping_div(divisor)
        };
        cx.st.set_r(rd, v);
    }
    h_udiv: Udiv { rd, rn, rm } => |cx| {
        let divisor = cx.st.r(rm) as u32;
        let v = (cx.st.r(rn) as u32).checked_div(divisor).unwrap_or(0) as i32;
        cx.st.set_r(rd, v);
    }
    h_and: And { rd, rn, rm } => |cx| {
        cx.st.set_r(rd, cx.st.r(rn) & cx.st.r(rm));
    }
    h_orr: Orr { rd, rn, rm } => |cx| {
        cx.st.set_r(rd, cx.st.r(rn) | cx.st.r(rm));
    }
    h_eor: Eor { rd, rn, rm } => |cx| {
        cx.st.set_r(rd, cx.st.r(rn) ^ cx.st.r(rm));
    }
    h_bic: Bic { rd, rn, rm } => |cx| {
        cx.st.set_r(rd, cx.st.r(rn) & !cx.st.r(rm));
    }
    h_mvn: Mvn { rd, rm } => |cx| {
        cx.st.set_r(rd, !cx.st.r(rm));
    }
    h_and_imm: AndImm { rd, rn, imm } => |cx| {
        cx.st.set_r(rd, cx.st.r(rn) & imm);
    }
    h_orr_imm: OrrImm { rd, rn, imm } => |cx| {
        cx.st.set_r(rd, cx.st.r(rn) | imm);
    }
    h_eor_imm: EorImm { rd, rn, imm } => |cx| {
        cx.st.set_r(rd, cx.st.r(rn) ^ imm);
    }
    h_shift_imm: ShiftImm { op, rd, rm, imm } => |cx| {
        cx.st.set_r(rd, shift(op, cx.st.r(rm), imm as u32));
    }
    h_shift_reg: ShiftReg { op, rd, rn, rm } => |cx| {
        let amount = (cx.st.r(rm) as u32) & 0xff;
        let v = if amount >= 32 {
            match op {
                ShiftOp::Asr => cx.st.r(rn) >> 31,
                _ => 0,
            }
        } else {
            shift(op, cx.st.r(rn), amount)
        };
        cx.st.set_r(rd, v);
    }
    h_cmp_imm: CmpImm { rn, imm } => |cx| {
        cx.st.flags = Flags::from_cmp(cx.st.r(rn), imm);
    }
    h_cmp_reg: CmpReg { rn, rm } => |cx| {
        cx.st.flags = Flags::from_cmp(cx.st.r(rn), cx.st.r(rm));
    }
    h_load: Load { rd, base, width, charge, offset } => |cx| {
        let addr = (cx.st.r(base) as u32).wrapping_add(offset as u32);
        let (v, section) = cx.st.memory.read_fast(addr, width)?;
        cx.st.set_r(rd, v);
        cx.total += cx.st.charge_load(charge, section);
    }
    h_load_idx: LoadIdx { rd, base, index, width, charge } => |cx| {
        let addr = (cx.st.r(base) as u32).wrapping_add(cx.st.r(index) as u32);
        let (v, section) = cx.st.memory.read_fast(addr, width)?;
        cx.st.set_r(rd, v);
        cx.total += cx.st.charge_load(charge, section);
    }
    h_store: Store { rs, base, width, charge, offset } => |cx| {
        let addr = (cx.st.r(base) as u32).wrapping_add(offset as u32);
        let section = cx.st.memory.write_fast(addr, cx.st.r(rs), width)?;
        cx.total += cx.st.charge_store(charge, section);
    }
    h_store_idx: StoreIdx { rs, base, index, width, charge } => |cx| {
        let addr = (cx.st.r(base) as u32).wrapping_add(cx.st.r(index) as u32);
        let section = cx.st.memory.write_fast(addr, cx.st.r(rs), width)?;
        cx.total += cx.st.charge_store(charge, section);
    }
    h_push: Push { start, len } => |cx| {
        let regs = &cx.lists[start as usize..start as usize + len as usize];
        let mut sp = cx.st.regs[Reg::Sp.index()] as u32;
        sp = sp.wrapping_sub(4 * len as u32);
        for (i, r) in regs.iter().enumerate() {
            cx.st.memory.write_fast(
                sp.wrapping_add(4 * i as u32),
                cx.st.regs[r.index()],
                MemWidth::Word,
            )?;
        }
        cx.st.regs[Reg::Sp.index()] = sp as i32;
    }
    h_pop: Pop { start, len } => |cx| {
        let base = cx.st.regs[Reg::Sp.index()] as u32;
        for i in 0..len as usize {
            let (v, _) = cx
                .st
                .memory
                .read_fast(base.wrapping_add(4 * i as u32), MemWidth::Word)?;
            let r = cx.lists[start as usize + i];
            cx.st.regs[r.index()] = v;
        }
        cx.st.regs[Reg::Sp.index()] = (base + 4 * len as u32) as i32;
    }
    h_mov_imm2: MovImm2 { rd1, imm1, rd2, imm2 } => |cx| {
        cx.st.set_r(rd1, imm1);
        cx.st.set_r(rd2, imm2);
    }
    h_mov_imm_mul: MovImmMul { rd1, imm, rd2, rn, rm } => |cx| {
        cx.st.set_r(rd1, imm);
        cx.st.set_r(rd2, cx.st.r(rn).wrapping_mul(cx.st.r(rm)));
    }
    h_mul_add_reg: MulAddReg { rd1, rn1, rm1, rd2, rn2, rm2 } => |cx| {
        cx.st.set_r(rd1, cx.st.r(rn1).wrapping_mul(cx.st.r(rm1)));
        cx.st.set_r(rd2, cx.st.r(rn2).wrapping_add(cx.st.r(rm2)));
    }
    h_shift_imm_add_reg: ShiftImmAddReg { op, rd1, rm1, imm, rd2, rn2, rm2 } => |cx| {
        cx.st.set_r(rd1, shift(op, cx.st.r(rm1), imm as u32));
        cx.st.set_r(rd2, cx.st.r(rn2).wrapping_add(cx.st.r(rm2)));
    }
    h_add_reg_shift_imm: AddRegShiftImm { rd1, rn1, rm1, op, rd2, rm2, imm } => |cx| {
        cx.st.set_r(rd1, cx.st.r(rn1).wrapping_add(cx.st.r(rm1)));
        cx.st.set_r(rd2, shift(op, cx.st.r(rm2), imm as u32));
    }
    h_add_imm_mov_reg: AddImmMovReg { rd1, rn1, imm, rd2, rm2 } => |cx| {
        cx.st.set_r(rd1, cx.st.r(rn1).wrapping_add(imm));
        cx.st.set_r(rd2, cx.st.r(rm2));
    }
    h_add_reg_load: AddRegLoad { rd1, rn1, rm1, rd2, base, width, charge, offset } => |cx| {
        cx.st.set_r(rd1, cx.st.r(rn1).wrapping_add(cx.st.r(rm1)));
        let addr = (cx.st.r(base) as u32).wrapping_add(offset as u32);
        let (v, section) = cx.st.memory.read_fast(addr, width)?;
        cx.st.set_r(rd2, v);
        cx.total += cx.st.charge_load(charge, section);
    }
    h_load_add_reg: LoadAddReg { rd1, base, width, charge, offset, rd2, rn2, rm2 } => |cx| {
        let addr = (cx.st.r(base) as u32).wrapping_add(offset as u32);
        let (v, section) = cx.st.memory.read_fast(addr, width)?;
        cx.st.set_r(rd1, v);
        cx.total += cx.st.charge_load(charge, section);
        cx.st.set_r(rd2, cx.st.r(rn2).wrapping_add(cx.st.r(rm2)));
    }
    h_shift_imm_add_reg_load: ShiftImmAddRegLoad {
        op, rd1, rm1, imm, rd2, rn2, rm2, rd3, base, width, charge, offset
    } => |cx| {
        cx.st.set_r(rd1, shift(op, cx.st.r(rm1), imm as u32));
        cx.st.set_r(rd2, cx.st.r(rn2).wrapping_add(cx.st.r(rm2)));
        let addr = (cx.st.r(base) as u32).wrapping_add(offset as u32);
        let (v, section) = cx.st.memory.read_fast(addr, width)?;
        cx.st.set_r(rd3, v);
        cx.total += cx.st.charge_load(charge, section);
    }
    h_add_reg_shift_imm_add_reg_load: AddRegShiftImmAddRegLoad {
        rd1, rn1, rm1, op, rd2, rm2, imm, rd3, rn3, rm3, rd4, base, width, charge, offset
    } => |cx| {
        cx.st.set_r(rd1, cx.st.r(rn1).wrapping_add(cx.st.r(rm1)));
        cx.st.set_r(rd2, shift(op, cx.st.r(rm2), imm as u32));
        cx.st.set_r(rd3, cx.st.r(rn3).wrapping_add(cx.st.r(rm3)));
        let addr = (cx.st.r(base) as u32).wrapping_add(offset as u32);
        let (v, section) = cx.st.memory.read_fast(addr, width)?;
        cx.st.set_r(rd4, v);
        cx.total += cx.st.charge_load(charge, section);
    }
    h_mov_imm2_mul: MovImm2Mul { rd1, imm1, rd2, imm2, rd3, rn, rm } => |cx| {
        cx.st.set_r(rd1, imm1);
        cx.st.set_r(rd2, imm2);
        cx.st.set_r(rd3, cx.st.r(rn).wrapping_mul(cx.st.r(rm)));
    }
    h_mov_imm_mul_load: MovImmMulLoad { rd1, imm, rd2, rn, rm, rd3, base, width, charge, offset } => |cx| {
        cx.st.set_r(rd1, imm);
        cx.st.set_r(rd2, cx.st.r(rn).wrapping_mul(cx.st.r(rm)));
        let addr = (cx.st.r(base) as u32).wrapping_add(offset as u32);
        let (v, section) = cx.st.memory.read_fast(addr, width)?;
        cx.st.set_r(rd3, v);
        cx.total += cx.st.charge_load(charge, section);
    }
    h_load_add_reg_shift_imm: LoadAddRegShiftImm {
        rd1, base, width, charge, offset, rd2, rn2, rm2, op, rd3, rm3, imm
    } => |cx| {
        let addr = (cx.st.r(base) as u32).wrapping_add(offset as u32);
        let (v, section) = cx.st.memory.read_fast(addr, width)?;
        cx.st.set_r(rd1, v);
        cx.total += cx.st.charge_load(charge, section);
        cx.st.set_r(rd2, cx.st.r(rn2).wrapping_add(cx.st.r(rm2)));
        cx.st.set_r(rd3, shift(op, cx.st.r(rm3), imm as u32));
    }
    h_mul_add_reg_mov_reg: MulAddRegMovReg { rd1, rn1, rm1, rd2, rn2, rm2, rd3, rm3 } => |cx| {
        cx.st.set_r(rd1, cx.st.r(rn1).wrapping_mul(cx.st.r(rm1)));
        cx.st.set_r(rd2, cx.st.r(rn2).wrapping_add(cx.st.r(rm2)));
        cx.st.set_r(rd3, cx.st.r(rm3));
    }
    h_add_imm_mov_reg_store: AddImmMovRegStore {
        rd1, rn1, imm, rd2, rm2, rs, base, width, charge, offset
    } => |cx| {
        cx.st.set_r(rd1, cx.st.r(rn1).wrapping_add(imm));
        cx.st.set_r(rd2, cx.st.r(rm2));
        let addr = (cx.st.r(base) as u32).wrapping_add(offset as u32);
        let section = cx.st.memory.write_fast(addr, cx.st.r(rs), width)?;
        cx.total += cx.st.charge_store(charge, section);
    }
    h_add_reg_load_mul: AddRegLoadMul { rd1, rn1, rm1, rd2, base, width, charge, offset, rd3, rn3, rm3 } => |cx| {
        cx.st.set_r(rd1, cx.st.r(rn1).wrapping_add(cx.st.r(rm1)));
        let addr = (cx.st.r(base) as u32).wrapping_add(offset as u32);
        let (v, section) = cx.st.memory.read_fast(addr, width)?;
        cx.st.set_r(rd2, v);
        cx.total += cx.st.charge_load(charge, section);
        cx.st.set_r(rd3, cx.st.r(rn3).wrapping_mul(cx.st.r(rm3)));
    }
    h_add_reg_load_mov_imm: AddRegLoadMovImm { rd1, rn1, rm1, rd2, base, width, charge, offset, rd3, imm } => |cx| {
        cx.st.set_r(rd1, cx.st.r(rn1).wrapping_add(cx.st.r(rm1)));
        let addr = (cx.st.r(base) as u32).wrapping_add(offset as u32);
        let (v, section) = cx.st.memory.read_fast(addr, width)?;
        cx.st.set_r(rd2, v);
        cx.total += cx.st.charge_load(charge, section);
        cx.st.set_r(rd3, imm);
    }
}

/// A decoded program with its handler table resolved: every op paired with
/// the fn-pointer that executes it.  Build one with
/// [`Board::prepare_threaded`](crate::board::Board::prepare_threaded) (or
/// [`ThreadedProgram::build`] from an existing [`DecodedProgram`]) and run it
/// any number of times with
/// [`Board::run_threaded`](crate::board::Board::run_threaded).
#[derive(Clone)]
pub struct ThreadedProgram {
    pub(crate) base: DecodedProgram,
    pub(crate) tops: Vec<TOp>,
}

impl std::fmt::Debug for ThreadedProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedProgram")
            .field("base", &self.base)
            .field("tops", &self.tops.len())
            .finish()
    }
}

impl ThreadedProgram {
    /// Resolve the handler table for an already-decoded program.
    pub fn build(base: DecodedProgram) -> ThreadedProgram {
        let tops = table(&base.ops);
        ThreadedProgram { base, tops }
    }

    /// The decoded program this handler table was resolved from.
    pub fn base(&self) -> &DecodedProgram {
        &self.base
    }

    /// Execute the program by threaded dispatch.
    ///
    /// Chunk scheduling, budget checks, exits and the result fold are the
    /// decoded engine's own (`execute` in `decode.rs`); only the op
    /// dispatch differs.  Bit-identical to the reference interpreter.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] on memory faults, call-stack overflow, or
    /// when `max_cycles` is exceeded.
    pub(crate) fn execute(
        &self,
        power: &PowerModel,
        timing: &TimingModel,
        max_cycles: u64,
    ) -> Result<CpuResult, RunError> {
        let prog = &self.base;
        let mut cx = Ctx {
            st: ExecState::new(prog, timing),
            total: 0,
            lists: &prog.reg_lists,
        };
        let mut pc = prog.entry_chunk;
        loop {
            if cx.total > max_cycles {
                return Err(RunError::CycleLimit {
                    limit: max_cycles,
                    executed: cx.total,
                });
            }
            let chunk = &prog.chunks[pc as usize];
            if chunk.block != NOT_A_HEAD {
                cx.st.block_counts[chunk.block as usize] += 1;
            }
            cx.st
                .counters
                .add_bucket(chunk.charges[0].0, chunk.charges[0].1 as u64);
            cx.st
                .counters
                .add_bucket(chunk.charges[1].0, chunk.charges[1].1 as u64);
            cx.total += chunk.charges[0].1 as u64 + chunk.charges[1].1 as u64;
            let ops = &self.tops[chunk.op_start as usize..chunk.op_end as usize];
            if let Err(fault) = run_ops(ops, &mut cx) {
                return Err(RunError::Memory(MemError::from(fault)));
            }
            match take_exit(&chunk.exit, &mut cx.st, &mut cx.total, pc)? {
                Some(next) => pc = next,
                None => {
                    let Ctx { st, total, .. } = cx;
                    return Ok(prog.assemble(st, total, power, timing));
                }
            }
        }
    }
}
