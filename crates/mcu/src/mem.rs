//! Address space, data layout and the data memory model.
//!
//! The modelled part is an STM32F100RB-class SoC: 64 KB of flash at
//! `0x0800_0000` and 8 KB of SRAM at `0x2000_0000`.  Code is executed
//! symbolically (block by block), but data accesses use real addresses so
//! that pointer arithmetic in the benchmarks behaves exactly as it would on
//! hardware, and so that every access can be attributed to flash or RAM for
//! the power model and the contention rule.

use flashram_device::DeviceDescriptor;
use flashram_ir::{MachineProgram, Section};
use flashram_isa::MemWidth;

/// Sizes and base addresses of the two memories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryMap {
    /// Base address of flash.
    pub flash_base: u32,
    /// Flash size in bytes.
    pub flash_size: u32,
    /// Base address of SRAM.
    pub ram_base: u32,
    /// SRAM size in bytes.
    pub ram_size: u32,
    /// Bytes of SRAM reserved for the call stack.
    pub stack_reserve: u32,
}

impl MemoryMap {
    /// The memory map described by a device-database entry.
    pub fn from_descriptor(desc: &DeviceDescriptor) -> MemoryMap {
        MemoryMap {
            flash_base: desc.memory.code.base,
            flash_size: desc.memory.code.size,
            ram_base: desc.memory.ram.base,
            ram_size: desc.memory.ram.size,
            stack_reserve: desc.memory.stack_reserve,
        }
    }

    /// The STM32F100RB map used in the paper's evaluation: 64 KB flash,
    /// 8 KB SRAM, 1 KB of which is reserved for the stack (the `stm32f100`
    /// entry of the device database).
    pub fn stm32f100() -> MemoryMap {
        MemoryMap::from_descriptor(&flashram_device::STM32F100)
    }

    /// Classify an address: which memory it falls in (if any) and its byte
    /// offset within that memory.  This is the single source of truth for
    /// address decoding; [`MemoryMap::section_of`] and the data memory's
    /// access path both derive from it.
    #[inline]
    pub fn locate(&self, addr: u32) -> Option<(Section, u32)> {
        if addr >= self.flash_base && addr - self.flash_base < self.flash_size {
            Some((Section::Flash, addr - self.flash_base))
        } else if addr >= self.ram_base && addr - self.ram_base < self.ram_size {
            Some((Section::Ram, addr - self.ram_base))
        } else {
            None
        }
    }

    /// Which memory an address falls in, if any.
    pub fn section_of(&self, addr: u32) -> Option<Section> {
        self.locate(addr).map(|(section, _)| section)
    }

    /// The initial stack pointer (top of RAM).
    pub fn initial_sp(&self) -> u32 {
        self.ram_base + self.ram_size
    }
}

impl Default for MemoryMap {
    fn default() -> Self {
        MemoryMap::stm32f100()
    }
}

/// Where the program's data and code ended up in the address space.
#[derive(Debug, Clone, PartialEq)]
pub struct DataLayout {
    /// Address of each global, indexed by symbol id.
    pub symbol_addr: Vec<u32>,
    /// Bytes of flash used by code.
    pub flash_code_bytes: u32,
    /// Bytes of flash used by read-only data.
    pub rodata_bytes: u32,
    /// Bytes of RAM used by mutable data.
    pub ram_data_bytes: u32,
    /// Bytes of RAM used by relocated code.
    pub ram_code_bytes: u32,
}

impl DataLayout {
    /// Total RAM consumed (data + relocated code + the stack reserve).
    pub fn ram_used(&self, map: &MemoryMap) -> u32 {
        self.ram_data_bytes + self.ram_code_bytes + map.stack_reserve
    }

    /// Spare RAM available for relocating more code.
    pub fn ram_spare(&self, map: &MemoryMap) -> u32 {
        map.ram_size.saturating_sub(self.ram_used(map))
    }
}

/// Errors raised while laying out or accessing memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Program image does not fit the part.
    DoesNotFit(String),
    /// Access outside the mapped memories.
    Fault {
        /// Offending address.
        addr: u32,
        /// Whether the access was a write.
        write: bool,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::DoesNotFit(what) => write!(f, "program does not fit: {what}"),
            MemError::Fault { addr, write } => {
                let kind = if *write { "write" } else { "read" };
                write!(f, "memory fault: {kind} at {addr:#010x}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// A runtime access fault, as a compact `Copy` value.
///
/// The decoded execution engine's hot loop threads this through its ops
/// instead of the boxed-string-bearing [`MemError`] so that the error
/// branch costs a register pair, not a by-memory return; it widens into
/// [`MemError::Fault`] at the loop boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Fault {
    pub addr: u32,
    pub write: bool,
}

impl From<Fault> for MemError {
    fn from(f: Fault) -> Self {
        MemError::Fault {
            addr: f.addr,
            write: f.write,
        }
    }
}

/// The data memory of the simulated SoC: a flat byte image of flash (for
/// read-only data) and RAM (for mutable data, relocated code's reservation
/// and the stack).
#[derive(Debug, Clone)]
pub struct Memory {
    map: MemoryMap,
    flash: Vec<u8>,
    ram: Vec<u8>,
}

impl Memory {
    /// Lay the program's data out in the address space and build the memory
    /// image.
    ///
    /// Flash holds the code image followed by read-only globals; RAM holds
    /// mutable globals (copied there at startup by the runtime, exactly as
    /// the paper describes), then any code relocated to RAM, then the stack
    /// at the top.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::DoesNotFit`] when code plus data exceed either
    /// memory, including the stack reserve.
    pub fn load(
        program: &MachineProgram,
        map: MemoryMap,
    ) -> Result<(Memory, DataLayout), MemError> {
        let mut flash = vec![0u8; map.flash_size as usize];
        let mut ram = vec![0u8; map.ram_size as usize];

        let flash_code_bytes = program.code_size() - program.ram_code_size();
        let ram_code_bytes = program.ram_code_size();

        // Read-only data sits after the code image in flash.
        let mut flash_cursor = align4(flash_code_bytes);
        // Mutable data sits at the bottom of RAM, relocated code after it.
        let mut ram_cursor = 0u32;

        let mut symbol_addr = Vec::with_capacity(program.globals.len());
        for g in &program.globals {
            let size = align4(g.size().max(1));
            match g.section() {
                Section::Flash => {
                    if flash_cursor + size > map.flash_size {
                        return Err(MemError::DoesNotFit(format!(
                            "read-only data overflows flash at global `{}`",
                            g.name
                        )));
                    }
                    let base = flash_cursor as usize;
                    flash[base..base + g.bytes.len()].copy_from_slice(&g.bytes);
                    symbol_addr.push(map.flash_base + flash_cursor);
                    flash_cursor += size;
                }
                Section::Ram => {
                    if ram_cursor + size > map.ram_size {
                        return Err(MemError::DoesNotFit(format!(
                            "data overflows RAM at global `{}`",
                            g.name
                        )));
                    }
                    let base = ram_cursor as usize;
                    ram[base..base + g.bytes.len()].copy_from_slice(&g.bytes);
                    symbol_addr.push(map.ram_base + ram_cursor);
                    ram_cursor += size;
                }
            }
        }

        let ram_data_bytes = ram_cursor;
        let layout = DataLayout {
            symbol_addr,
            flash_code_bytes,
            rodata_bytes: flash_cursor.saturating_sub(align4(flash_code_bytes)),
            ram_data_bytes,
            ram_code_bytes,
        };

        if flash_code_bytes > map.flash_size {
            return Err(MemError::DoesNotFit("code overflows flash".into()));
        }
        if layout.ram_used(&map) > map.ram_size {
            return Err(MemError::DoesNotFit(format!(
                "RAM budget exceeded: {} bytes of data + {} bytes of relocated code + {} bytes of stack > {} bytes",
                ram_data_bytes, ram_code_bytes, map.stack_reserve, map.ram_size
            )));
        }

        Ok((Memory { map, flash, ram }, layout))
    }

    /// The memory map.
    pub fn map(&self) -> &MemoryMap {
        &self.map
    }

    /// Which memory the address belongs to.
    pub fn section_of(&self, addr: u32) -> Option<Section> {
        self.map.section_of(addr)
    }

    #[inline]
    fn slot(&self, addr: u32, len: u32, write: bool) -> Result<(Section, usize), Fault> {
        let fault = Fault { addr, write };
        let (section, off) = self.map.locate(addr).ok_or(fault)?;
        let limit = match section {
            Section::Flash if write => return Err(fault),
            Section::Flash => self.flash.len(),
            Section::Ram => self.ram.len(),
        };
        let off = off as usize;
        if off + len as usize <= limit {
            Ok((section, off))
        } else {
            Err(fault)
        }
    }

    /// Read a value of the given width (zero-extended).
    ///
    /// # Errors
    ///
    /// Returns a fault for unmapped addresses.
    pub fn read(&self, addr: u32, width: MemWidth) -> Result<(i32, Section), MemError> {
        self.read_fast(addr, width).map_err(MemError::from)
    }

    /// Write a value of the given width (truncating).
    ///
    /// # Errors
    ///
    /// Returns a fault for unmapped addresses or writes to flash.
    pub fn write(&mut self, addr: u32, value: i32, width: MemWidth) -> Result<Section, MemError> {
        self.write_fast(addr, value, width).map_err(MemError::from)
    }

    /// [`Memory::read`] with the compact [`Fault`] error, for the decoded
    /// engine's hot loop.
    #[inline(always)]
    pub(crate) fn read_fast(&self, addr: u32, width: MemWidth) -> Result<(i32, Section), Fault> {
        let len = width.bytes();
        let (section, off) = self.slot(addr, len, false)?;
        let bytes = match section {
            Section::Flash => &self.flash[off..off + len as usize],
            Section::Ram => &self.ram[off..off + len as usize],
        };
        let value = match width {
            MemWidth::Byte => bytes[0] as i32,
            MemWidth::Half => u16::from_le_bytes([bytes[0], bytes[1]]) as i32,
            MemWidth::Word => i32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]),
        };
        Ok((value, section))
    }

    /// [`Memory::write`] with the compact [`Fault`] error, for the decoded
    /// engine's hot loop.
    #[inline(always)]
    pub(crate) fn write_fast(
        &mut self,
        addr: u32,
        value: i32,
        width: MemWidth,
    ) -> Result<Section, Fault> {
        let len = width.bytes();
        let (section, off) = self.slot(addr, len, true)?;
        let dst = match section {
            Section::Flash => unreachable!("slot() rejects flash writes"),
            Section::Ram => &mut self.ram[off..off + len as usize],
        };
        match width {
            MemWidth::Byte => dst[0] = value as u8,
            MemWidth::Half => dst.copy_from_slice(&(value as u16).to_le_bytes()),
            MemWidth::Word => dst.copy_from_slice(&value.to_le_bytes()),
        }
        Ok(section)
    }
}

fn align4(x: u32) -> u32 {
    (x + 3) & !3
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashram_ir::{FuncId, GlobalData, MachineProgram};

    fn program_with_globals(globals: Vec<GlobalData>) -> MachineProgram {
        MachineProgram {
            functions: vec![],
            globals,
            entry: FuncId(0),
        }
    }

    #[test]
    fn map_classifies_addresses() {
        let map = MemoryMap::stm32f100();
        assert_eq!(map.section_of(0x0800_0000), Some(Section::Flash));
        assert_eq!(map.section_of(0x0800_ffff), Some(Section::Flash));
        assert_eq!(map.section_of(0x2000_0000), Some(Section::Ram));
        assert_eq!(map.section_of(0x2000_1fff), Some(Section::Ram));
        assert_eq!(map.section_of(0x2000_2000), None);
        assert_eq!(map.section_of(0x0000_0000), None);
        assert_eq!(map.initial_sp(), 0x2000_2000);
    }

    #[test]
    fn locate_reports_sections_with_offsets() {
        let map = MemoryMap::stm32f100();
        assert_eq!(map.locate(0x0800_0000), Some((Section::Flash, 0)));
        assert_eq!(map.locate(0x0800_ffff), Some((Section::Flash, 0xffff)));
        assert_eq!(map.locate(0x2000_0010), Some((Section::Ram, 0x10)));
        assert_eq!(map.locate(0x2000_1fff), Some((Section::Ram, 0x1fff)));
        assert_eq!(map.locate(0x07ff_ffff), None);
        assert_eq!(map.locate(0x2000_2000), None);
    }

    #[test]
    fn layout_places_rodata_in_flash_and_data_in_ram() {
        let prog = program_with_globals(vec![
            GlobalData {
                name: "rw".into(),
                bytes: vec![1, 2, 3, 4],
                mutable: true,
            },
            GlobalData {
                name: "ro".into(),
                bytes: vec![9, 9],
                mutable: false,
            },
        ]);
        let (mem, layout) = Memory::load(&prog, MemoryMap::stm32f100()).unwrap();
        assert_eq!(layout.symbol_addr.len(), 2);
        assert_eq!(mem.section_of(layout.symbol_addr[0]), Some(Section::Ram));
        assert_eq!(mem.section_of(layout.symbol_addr[1]), Some(Section::Flash));
        assert_eq!(layout.ram_data_bytes, 4);
        let (v, sec) = mem.read(layout.symbol_addr[0], MemWidth::Word).unwrap();
        assert_eq!(v, i32::from_le_bytes([1, 2, 3, 4]));
        assert_eq!(sec, Section::Ram);
    }

    #[test]
    fn read_write_round_trips_all_widths() {
        let prog = program_with_globals(vec![GlobalData {
            name: "buf".into(),
            bytes: vec![0; 64],
            mutable: true,
        }]);
        let (mut mem, layout) = Memory::load(&prog, MemoryMap::stm32f100()).unwrap();
        let base = layout.symbol_addr[0];
        mem.write(base, -123456, MemWidth::Word).unwrap();
        assert_eq!(mem.read(base, MemWidth::Word).unwrap().0, -123456);
        mem.write(base + 8, 0x1234_5678, MemWidth::Half).unwrap();
        assert_eq!(mem.read(base + 8, MemWidth::Half).unwrap().0, 0x5678);
        mem.write(base + 12, 0x7fb, MemWidth::Byte).unwrap();
        assert_eq!(mem.read(base + 12, MemWidth::Byte).unwrap().0, 0xfb);
    }

    #[test]
    fn writes_to_flash_and_unmapped_addresses_fault() {
        let prog = program_with_globals(vec![GlobalData {
            name: "table".into(),
            bytes: vec![7; 8],
            mutable: false,
        }]);
        let (mut mem, layout) = Memory::load(&prog, MemoryMap::stm32f100()).unwrap();
        let ro = layout.symbol_addr[0];
        assert_eq!(mem.read(ro, MemWidth::Byte).unwrap().0, 7);
        assert!(matches!(
            mem.write(ro, 1, MemWidth::Word),
            Err(MemError::Fault { write: true, .. })
        ));
        assert!(mem.read(0x4000_0000, MemWidth::Word).is_err());
    }

    #[test]
    fn oversized_data_is_rejected() {
        let prog = program_with_globals(vec![GlobalData {
            name: "huge".into(),
            bytes: vec![0; 9 * 1024],
            mutable: true,
        }]);
        assert!(matches!(
            Memory::load(&prog, MemoryMap::stm32f100()),
            Err(MemError::DoesNotFit(_))
        ));
    }

    #[test]
    fn ram_spare_accounts_for_stack_and_code() {
        let prog = program_with_globals(vec![GlobalData {
            name: "rw".into(),
            bytes: vec![0; 1024],
            mutable: true,
        }]);
        let map = MemoryMap::stm32f100();
        let (_, layout) = Memory::load(&prog, map).unwrap();
        assert_eq!(layout.ram_spare(&map), 8 * 1024 - 1024 - 1024);
    }
}
