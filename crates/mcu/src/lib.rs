//! A Cortex-M3-class microcontroller simulator with an energy model.
//!
//! This crate replaces the paper's physical measurement setup (a
//! power-instrumented STM32VLDISCOVERY board) with a simulated substrate
//! that models exactly the effects the flash/RAM placement optimization
//! exploits and pays for:
//!
//! * both flash and RAM are single-cycle memories, so moving code to RAM is
//!   never faster — only the instrumentation overhead and bus contention
//!   change execution time,
//! * executing from RAM draws noticeably less power than executing from
//!   flash (Figure 1 of the paper; the [`power`] module holds the calibrated
//!   constants),
//! * a load executed from RAM that also reads RAM contends with instruction
//!   fetch and stalls for an extra cycle (the model's `L_b` term),
//! * the core can sleep at a quiescent power of 3.5 mW between activations,
//!   which is what makes the Section 7 periodic-sensing case study work.
//!
//! The [`Board`] type ties the pieces together: it lays out a
//! [`MachineProgram`](flashram_ir::MachineProgram)'s data in the address
//! space, interprets its code cycle by cycle, and reports time, energy,
//! average power and a per-block execution profile.  Four execution
//! engines ([`Engine`]) share those semantics: the IR-walking reference
//! interpreter ([`cpu::Cpu`], reachable via
//! [`Board::run_reference`](board::Board::run_reference)); the decoded
//! engine ([`decode::DecodedProgram`]) that
//! [`Board::run`](board::Board::run) drives by default — a one-time
//! lowering pass that flattens blocks into compact ops, resolves literal
//! symbols, validates all cross-references, and prefuses statically known
//! cycle charges; the threaded dispatcher
//! ([`dispatch::ThreadedProgram`]), which replaces the executor's central
//! match with per-op handler function pointers; and the tiered superblock
//! engine ([`superblock`]), which profiles loop heads at run time and
//! stitches hot loop bodies into straight-line superblocks executed with
//! one budget check per iteration.  All three lowered engines are held
//! bit-identical to the reference interpreter — same energy bits, same
//! profile, same errors at every cycle budget.  [`BatchRunner`] scales
//! them up: it fans a set of
//! programs (or configurations) out over a worker pool and collects results
//! that are order-stable and bit-identical to sequential runs — the
//! substrate for every sweep in `flashram-bench` and the heavy integration
//! tests.
//!
//! This crate corresponds to Sections 3 (measurement setup), 5 (power
//! model) and 7 (sleep scenario) of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod board;
pub mod cpu;
pub mod decode;
pub mod dispatch;
pub mod energy;
pub mod mem;
pub mod power;
pub mod superblock;

pub use batch::BatchRunner;
pub use board::{Board, Engine, RunConfig, RunResult, SleepScenario};
pub use cpu::RunError;
pub use decode::{DecodeError, DecodedProgram};
pub use dispatch::ThreadedProgram;
pub use energy::{CycleCounters, EnergyMeter};
pub use mem::{DataLayout, Memory, MemoryMap};
pub use power::PowerModel;
pub use superblock::TierStats;
