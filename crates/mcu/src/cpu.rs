//! The instruction-level **reference** interpreter.
//!
//! Code is executed block by block: straight-line instructions update the
//! architectural state (registers, flags, data memory) while integer
//! [`CycleCounters`] charge each instruction the cycle count appropriate to
//! the memory its block lives in — the floating-point energy math is folded
//! in once, after the run, so the hot loop never touches a float.  Control
//! transfers are interpreted from the block terminators, including the
//! long-range indirect forms the placement transformation substitutes —
//! which cost more cycles, exactly as in Figure 4 of the paper.
//!
//! This interpreter walks the nested [`MachineProgram`] IR directly and is
//! the *reference semantics* of the simulator.  The production engine is
//! the decoded one in [`crate::decode`], which [`crate::board::Board::run`]
//! drives by default; this one is kept (reachable through
//! [`Board::run_reference`](crate::board::Board::run_reference)) because
//! its per-instruction structure is easy to audit against the paper, and
//! the differential tests hold the decoded engine bit-identical to it.

use flashram_ir::{BlockId, BlockRef, FuncId, MachineProgram, ProfileData, Section};
use flashram_isa::cond::Flags;
use flashram_isa::inst::LitValue;
use flashram_isa::{Inst, InstClass, Reg, Terminator, TimingModel};

use crate::energy::{CycleCounters, EnergyMeter};
use crate::mem::{DataLayout, MemError, Memory};
use crate::power::PowerModel;

/// Errors raised during execution.
///
/// Batch users (see [`crate::batch::BatchRunner`]) get one of these per
/// failed job; the variants carry enough context to tell a structurally
/// broken program apart from one that is merely slow.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// A data access faulted (unmapped address, misalignment, write to
    /// read-only memory, or a program image that does not fit the part).
    Memory(MemError),
    /// The cycle budget was exhausted before the program returned.
    ///
    /// `executed` is how many cycles actually ran before the interpreter
    /// gave up; it always exceeds `limit` by at most one basic block, so a
    /// caller sweeping cycle budgets can distinguish a runaway program
    /// (`executed` ≈ `limit` however large the limit) from a slow one that
    /// would finish under a bigger budget.
    CycleLimit {
        /// The configured budget ([`crate::board::RunConfig::max_cycles`]).
        limit: u64,
        /// Cycles executed when the budget check fired.
        executed: u64,
    },
    /// The program is structurally broken (bad function/block reference).
    BadProgram(String),
    /// The call stack grew beyond any reasonable embedded depth.
    CallDepth(usize),
}

impl From<MemError> for RunError {
    fn from(e: MemError) -> Self {
        RunError::Memory(e)
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Memory(e) => write!(f, "{e}"),
            RunError::CycleLimit { limit, executed } => {
                write!(f, "cycle limit of {limit} exceeded after {executed} cycles")
            }
            RunError::BadProgram(why) => write!(f, "malformed program: {why}"),
            RunError::CallDepth(d) => write!(f, "call depth exceeded {d}"),
        }
    }
}

impl std::error::Error for RunError {}

/// What the CPU produced after a completed run.
#[derive(Debug, Clone)]
pub struct CpuResult {
    /// The entry function's return value (`r0`).
    pub return_value: i32,
    /// The energy/cycle meter.
    pub meter: EnergyMeter,
    /// Per-block execution counts.
    pub profile: ProfileData,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    func: FuncId,
    block: BlockId,
    inst_index: usize,
}

pub(crate) const MAX_CALL_DEPTH: usize = 256;

/// The interpreter.
///
/// Bookkeeping is deliberately flat: cycles go into integer
/// [`CycleCounters`] buckets and block executions into per-function count
/// vectors; both are folded into the reported [`EnergyMeter`] and
/// [`ProfileData`] only when the run completes.
pub struct Cpu<'a> {
    program: &'a MachineProgram,
    memory: Memory,
    layout: DataLayout,
    power: &'a PowerModel,
    timing: &'a TimingModel,
    max_cycles: u64,
    regs: [i32; 16],
    flags: Flags,
    counters: CycleCounters,
    /// `block_counts[f][b]` = executions of block `b` of function `f`.
    block_counts: Vec<Vec<u64>>,
    /// `call_counts[f]` = calls of function `f`.
    call_counts: Vec<u64>,
    call_stack: Vec<Frame>,
}

impl<'a> Cpu<'a> {
    /// Build a CPU around a loaded program image.
    pub fn new(
        program: &'a MachineProgram,
        memory: Memory,
        layout: DataLayout,
        power: &'a PowerModel,
        timing: &'a TimingModel,
        max_cycles: u64,
    ) -> Cpu<'a> {
        let mut regs = [0i32; 16];
        regs[Reg::Sp.index()] = memory.map().initial_sp() as i32;
        let block_counts = program
            .functions
            .iter()
            .map(|f| vec![0u64; f.blocks.len()])
            .collect();
        Cpu {
            program,
            memory,
            layout,
            power,
            timing,
            max_cycles,
            regs,
            flags: Flags::default(),
            counters: CycleCounters::new(),
            block_counts,
            call_counts: vec![0; program.functions.len()],
            call_stack: Vec::new(),
        }
    }

    #[inline]
    fn reg(&self, r: Reg) -> i32 {
        self.regs[r.index()]
    }

    #[inline]
    fn set_reg(&mut self, r: Reg, v: i32) {
        self.regs[r.index()] = v;
    }

    #[inline]
    fn charge(&mut self, class: InstClass, cycles: u64, exec: Section, data: Option<Section>) {
        self.counters.add(class, exec, data, cycles);
    }

    /// Fold the flat accumulators into the reported result types.
    fn fold_results(&self) -> (EnergyMeter, ProfileData) {
        let meter = self.counters.finish(self.power, self.timing);
        let mut profile = ProfileData::new();
        for (f, blocks) in self.block_counts.iter().enumerate() {
            for (b, &count) in blocks.iter().enumerate() {
                profile.add_block_count(
                    BlockRef {
                        func: FuncId(f as u32),
                        block: BlockId(b as u32),
                    },
                    count,
                );
            }
        }
        for (f, &count) in self.call_counts.iter().enumerate() {
            profile.add_call_count(FuncId(f as u32), count);
        }
        (meter, profile)
    }

    /// Run the program from its entry function until it returns.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] on memory faults, malformed control flow, call
    /// stack overflow or when `max_cycles` is exceeded.
    pub fn run(mut self) -> Result<CpuResult, RunError> {
        let entry = self.program.entry;
        if entry.index() >= self.program.functions.len() {
            return Err(RunError::BadProgram(format!(
                "entry function {entry} out of range"
            )));
        }
        let mut func = entry;
        let mut block = BlockId(0);
        let mut inst_index = 0usize;

        loop {
            if self.counters.total_cycles() > self.max_cycles {
                return Err(RunError::CycleLimit {
                    limit: self.max_cycles,
                    executed: self.counters.total_cycles(),
                });
            }
            let f = &self.program.functions[func.index()];
            let Some(b) = f.blocks.get(block.index()) else {
                return Err(RunError::BadProgram(format!(
                    "function {} has no block {block}",
                    f.name
                )));
            };
            let exec = b.section;
            if inst_index == 0 {
                self.block_counts[func.index()][block.index()] += 1;
            }

            // Straight-line instructions.
            let mut call: Option<(FuncId, usize)> = None;
            for (i, inst) in b.insts.iter().enumerate().skip(inst_index) {
                if let Inst::Bl { callee } = inst {
                    let mut cycles = inst.base_cycles();
                    if exec == Section::Flash {
                        cycles += self.timing.flash_call_penalty_cycles();
                    }
                    self.charge(InstClass::Call, cycles, exec, None);
                    call = Some((FuncId(*callee), i + 1));
                    break;
                }
                self.execute(inst, exec)?;
            }

            if let Some((callee, resume_at)) = call {
                if callee.index() >= self.program.functions.len() {
                    return Err(RunError::BadProgram(format!(
                        "call to missing function {callee}"
                    )));
                }
                if self.call_stack.len() >= MAX_CALL_DEPTH {
                    return Err(RunError::CallDepth(MAX_CALL_DEPTH));
                }
                self.call_counts[callee.index()] += 1;
                self.call_stack.push(Frame {
                    func,
                    block,
                    inst_index: resume_at,
                });
                func = callee;
                block = BlockId(0);
                inst_index = 0;
                continue;
            }

            // Terminator.
            let (next, charge_cycles) = self.evaluate_terminator(&b.term, exec)?;
            self.charge(InstClass::Branch, charge_cycles, exec, None);
            match next {
                Next::Block(target) => {
                    block = target;
                    inst_index = 0;
                }
                Next::Return => match self.call_stack.pop() {
                    Some(frame) => {
                        func = frame.func;
                        block = frame.block;
                        inst_index = frame.inst_index;
                    }
                    None => {
                        let (meter, profile) = self.fold_results();
                        return Ok(CpuResult {
                            return_value: self.reg(Reg::R0),
                            meter,
                            profile,
                        });
                    }
                },
            }
        }
    }

    fn evaluate_terminator(
        &mut self,
        term: &Terminator<BlockId>,
        exec: Section,
    ) -> Result<(Next, u64), RunError> {
        let kind = term.kind();
        let (next, taken) = match term {
            Terminator::Branch { target } | Terminator::IndirectBranch { target } => {
                (Next::Block(*target), true)
            }
            Terminator::FallThrough { target } | Terminator::IndirectFallThrough { target } => {
                (Next::Block(*target), true)
            }
            Terminator::CondBranch {
                cond,
                target,
                fallthrough,
            }
            | Terminator::IndirectCondBranch {
                cond,
                target,
                fallthrough,
            } => {
                if cond.holds(self.flags) {
                    (Next::Block(*target), true)
                } else {
                    (Next::Block(*fallthrough), false)
                }
            }
            Terminator::CompareBranch {
                nonzero,
                rn,
                target,
                fallthrough,
            }
            | Terminator::IndirectCompareBranch {
                nonzero,
                rn,
                target,
                fallthrough,
            } => {
                if (self.reg(*rn) != 0) == *nonzero {
                    (Next::Block(*target), true)
                } else {
                    (Next::Block(*fallthrough), false)
                }
            }
            Terminator::Return => (Next::Return, true),
        };
        let mut cycles = if taken {
            kind.taken_cycles()
        } else {
            kind.not_taken_cycles()
        };
        if exec == Section::Flash {
            cycles += self.timing.flash_terminator_penalty_cycles(kind, taken);
        }
        Ok((next, cycles))
    }

    fn execute(&mut self, inst: &Inst, exec: Section) -> Result<(), RunError> {
        use Inst::*;
        let mut cycles = inst.base_cycles();
        let mut data_section: Option<Section> = None;
        match inst {
            Nop => {}
            MovImm { rd, imm } => self.set_reg(*rd, *imm),
            MovReg { rd, rm } => {
                let v = self.reg(*rm);
                self.set_reg(*rd, v);
            }
            MovCond { cond, rd, imm } => {
                if cond.holds(self.flags) {
                    self.set_reg(*rd, *imm);
                }
            }
            LdrLit { rd, value } => {
                let v = match value {
                    LitValue::Const(c) => *c,
                    LitValue::Symbol(s) => {
                        *self.layout.symbol_addr.get(s.0 as usize).ok_or_else(|| {
                            RunError::BadProgram(format!("literal references missing symbol {s}"))
                        })? as i32
                    }
                };
                self.set_reg(*rd, v);
                // The literal pool lives alongside the code.
                data_section = Some(exec);
                if exec == Section::Ram {
                    cycles += self.timing.ram_load_contention_cycles;
                }
            }
            AddImm { rd, rn, imm } => {
                let v = self.reg(*rn).wrapping_add(*imm);
                self.set_reg(*rd, v);
            }
            AddReg { rd, rn, rm } => {
                let v = self.reg(*rn).wrapping_add(self.reg(*rm));
                self.set_reg(*rd, v);
            }
            SubImm { rd, rn, imm } => {
                let v = self.reg(*rn).wrapping_sub(*imm);
                self.set_reg(*rd, v);
            }
            SubReg { rd, rn, rm } => {
                let v = self.reg(*rn).wrapping_sub(self.reg(*rm));
                self.set_reg(*rd, v);
            }
            RsbImm { rd, rn, imm } => {
                let v = imm.wrapping_sub(self.reg(*rn));
                self.set_reg(*rd, v);
            }
            Mul { rd, rn, rm } => {
                let v = self.reg(*rn).wrapping_mul(self.reg(*rm));
                self.set_reg(*rd, v);
            }
            Sdiv { rd, rn, rm } => {
                let d = self.reg(*rm);
                let v = if d == 0 {
                    0
                } else {
                    self.reg(*rn).wrapping_div(d)
                };
                self.set_reg(*rd, v);
            }
            Udiv { rd, rn, rm } => {
                let d = self.reg(*rm) as u32;
                let v = (self.reg(*rn) as u32).checked_div(d).unwrap_or(0) as i32;
                self.set_reg(*rd, v);
            }
            And { rd, rn, rm } => {
                let v = self.reg(*rn) & self.reg(*rm);
                self.set_reg(*rd, v);
            }
            Orr { rd, rn, rm } => {
                let v = self.reg(*rn) | self.reg(*rm);
                self.set_reg(*rd, v);
            }
            Eor { rd, rn, rm } => {
                let v = self.reg(*rn) ^ self.reg(*rm);
                self.set_reg(*rd, v);
            }
            Bic { rd, rn, rm } => {
                let v = self.reg(*rn) & !self.reg(*rm);
                self.set_reg(*rd, v);
            }
            Mvn { rd, rm } => {
                let v = !self.reg(*rm);
                self.set_reg(*rd, v);
            }
            AndImm { rd, rn, imm } => {
                let v = self.reg(*rn) & *imm;
                self.set_reg(*rd, v);
            }
            OrrImm { rd, rn, imm } => {
                let v = self.reg(*rn) | *imm;
                self.set_reg(*rd, v);
            }
            EorImm { rd, rn, imm } => {
                let v = self.reg(*rn) ^ *imm;
                self.set_reg(*rd, v);
            }
            ShiftImm { op, rd, rm, imm } => {
                let v = shift(*op, self.reg(*rm), *imm as u32);
                self.set_reg(*rd, v);
            }
            ShiftReg { op, rd, rn, rm } => {
                let amount = (self.reg(*rm) as u32) & 0xff;
                let v = if amount >= 32 {
                    match op {
                        flashram_isa::ShiftOp::Asr => self.reg(*rn) >> 31,
                        _ => 0,
                    }
                } else {
                    shift(*op, self.reg(*rn), amount)
                };
                self.set_reg(*rd, v);
            }
            CmpImm { rn, imm } => {
                self.flags = Flags::from_cmp(self.reg(*rn), *imm);
            }
            CmpReg { rn, rm } => {
                self.flags = Flags::from_cmp(self.reg(*rn), self.reg(*rm));
            }
            Load {
                rd,
                base,
                offset,
                width,
            } => {
                let addr = (self.reg(*base) as u32).wrapping_add(*offset as u32);
                let (v, section) = self.memory.read(addr, *width)?;
                self.set_reg(*rd, v);
                data_section = Some(section);
                if exec == Section::Ram && section == Section::Ram {
                    cycles += self.timing.ram_load_contention_cycles;
                }
            }
            LoadIdx {
                rd,
                base,
                index,
                width,
            } => {
                let addr = (self.reg(*base) as u32).wrapping_add(self.reg(*index) as u32);
                let (v, section) = self.memory.read(addr, *width)?;
                self.set_reg(*rd, v);
                data_section = Some(section);
                if exec == Section::Ram && section == Section::Ram {
                    cycles += self.timing.ram_load_contention_cycles;
                }
            }
            Store {
                rs,
                base,
                offset,
                width,
            } => {
                let addr = (self.reg(*base) as u32).wrapping_add(*offset as u32);
                let section = self.memory.write(addr, self.reg(*rs), *width)?;
                data_section = Some(section);
                if exec == Section::Ram && section == Section::Ram {
                    cycles += self.timing.ram_store_contention_cycles;
                }
            }
            StoreIdx {
                rs,
                base,
                index,
                width,
            } => {
                let addr = (self.reg(*base) as u32).wrapping_add(self.reg(*index) as u32);
                let section = self.memory.write(addr, self.reg(*rs), *width)?;
                data_section = Some(section);
                if exec == Section::Ram && section == Section::Ram {
                    cycles += self.timing.ram_store_contention_cycles;
                }
            }
            Push { regs } => {
                let mut sp = self.reg(Reg::Sp) as u32;
                sp = sp.wrapping_sub(4 * regs.len() as u32);
                let base = sp;
                for (i, r) in regs.iter().enumerate() {
                    self.memory.write(
                        base.wrapping_add(4 * i as u32),
                        self.reg(*r),
                        flashram_isa::MemWidth::Word,
                    )?;
                }
                self.set_reg(Reg::Sp, sp as i32);
                data_section = Some(Section::Ram);
            }
            Pop { regs } => {
                let base = self.reg(Reg::Sp) as u32;
                for (i, r) in regs.iter().enumerate() {
                    let (v, _) = self.memory.read(
                        base.wrapping_add(4 * i as u32),
                        flashram_isa::MemWidth::Word,
                    )?;
                    self.set_reg(*r, v);
                }
                self.set_reg(Reg::Sp, (base + 4 * regs.len() as u32) as i32);
                data_section = Some(Section::Ram);
            }
            AddSp { delta } => {
                let v = self.reg(Reg::Sp).wrapping_add(*delta);
                self.set_reg(Reg::Sp, v);
            }
            Bl { .. } => unreachable!("calls are handled by the block loop"),
        }
        if exec == Section::Flash {
            cycles += self.timing.flash_instr_penalty_cycles();
        }
        self.charge(inst.class(), cycles, exec, data_section);
        Ok(())
    }
}

enum Next {
    Block(BlockId),
    Return,
}

pub(crate) fn shift(op: flashram_isa::ShiftOp, value: i32, amount: u32) -> i32 {
    let amount = amount & 31;
    match op {
        flashram_isa::ShiftOp::Lsl => value.wrapping_shl(amount),
        flashram_isa::ShiftOp::Lsr => ((value as u32) >> amount) as i32,
        flashram_isa::ShiftOp::Asr => value >> amount,
    }
}
