//! The decoded (predecoded, flattened) execution engine.
//!
//! [`Cpu::run`](crate::cpu::Cpu) interprets the nested [`MachineProgram`] IR
//! directly: every retired instruction walks the `Inst` enum, re-derives its
//! cycle cost and power class, and bumps a three-axis counter cube.  That is
//! the right *reference semantics*, but all of it is invariant across a run
//! — so this module compiles a `(program, layout)` pair **once** into a
//! [`DecodedProgram`] and lets [`Board`](crate::board::Board) drive the
//! compiled form instead:
//!
//! * all basic blocks of all functions are flattened into one contiguous
//!   array of compact fixed-size ops, split into *chunks* at call sites
//!   so the executor's main loop sees exactly the same scheduling points
//!   (block entry, call entry, post-call resume) as the reference
//!   interpreter; per-chunk metadata (profile slot, prefused charges,
//!   decoded terminator) lives outside the op stream so the dispatch loop
//!   stays minimal;
//! * literal-pool symbol references are resolved to absolute addresses at
//!   decode time, and every callee / block-target index is validated up
//!   front — the hot loop contains **no** `BadProgram` checks, and a
//!   malformed program fails at [`Board::decode`](crate::board::Board::decode)
//!   with a [`DecodeError`] instead of faulting mid-run;
//! * per-op cycle costs and [`CycleCounters`] bucket indices are
//!   precomputed; every run of ops whose charge is statically known (ALU,
//!   multiplies, divides, resolved literal loads, push/pop) is prefused
//!   into per-bucket aggregates charged once per straight-line chunk
//!   instead of once per instruction; and the hottest dynamic op *pairs,
//!   triples and quads* of the BEEBS sweep are fused into single
//!   superinstructions (including the compare-plus-conditional-branch
//!   that ends almost half of all executed blocks and the shift-add-load
//!   array-indexing idiom);
//! * the running cycle total lives in a register: counter buckets are
//!   charged in memory, but the budget check never reads memory.
//!
//! The engine is **observably bit-identical** to the reference interpreter
//! for every valid program: same `EnergyMeter` (to the bit — the counter
//! fold is shared), same `ProfileData`, same return value, and same errors,
//! including `RunError::CycleLimit { limit, executed }`, because the cycle
//! budget is checked at exactly the reference interpreter's check points
//! (block entry, call entry, post-call resume) with exactly the same
//! running totals.  Prefusing cannot be observed: between two check points
//! no charge is readable, and a faulting run discards its counters
//! entirely.  The one intentional difference is *when* structural errors
//! surface: the reference interpreter reports a dangling reference only if
//! it executes it, the decoded engine rejects it before running anything.
//!
//! `crates/mcu/tests/decoded_equivalence.rs` and the workspace-level
//! `tests/decoded_differential.rs` assert the bit-identity property over
//! generated programs and the BEEBS kernels; `sim_perf` tracks the
//! throughput ratio in `BENCH_sim.json`.

use std::collections::BTreeMap;

use flashram_ir::{BlockId, BlockRef, MachineProgram, ProfileData, Section};
use flashram_isa::cond::{Cond, Flags};
use flashram_isa::inst::LitValue;
use flashram_isa::{Inst, InstClass, MemWidth, Reg, ShiftOp, Terminator, TimingModel};

use crate::cpu::{shift, CpuResult, RunError, MAX_CALL_DEPTH};
use crate::energy::CycleCounters;
use crate::mem::{DataLayout, Fault, MemError, Memory};
use crate::power::PowerModel;

/// Errors raised while lowering a program into its decoded form.
///
/// Everything the reference interpreter would report as
/// [`RunError::BadProgram`] *if it happened to execute the broken
/// instruction* is caught here, before anything runs.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// Laying out the program image failed (it does not fit the part).
    Memory(MemError),
    /// The program is structurally broken: a dangling symbol in a literal
    /// load, an out-of-range callee or branch target, an empty function, or
    /// a missing entry point.
    Invalid(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Memory(e) => write!(f, "{e}"),
            DecodeError::Invalid(why) => write!(f, "malformed program: {why}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<MemError> for DecodeError {
    fn from(e: MemError) -> Self {
        DecodeError::Memory(e)
    }
}

impl From<DecodeError> for RunError {
    fn from(e: DecodeError) -> Self {
        match e {
            DecodeError::Memory(m) => RunError::Memory(m),
            DecodeError::Invalid(why) => RunError::BadProgram(why),
        }
    }
}

/// Precomputed charging data for a memory operation whose data section is
/// only known at run time: the bucket index for `(class, exec, data: None)`
/// (the dynamic section is added as an offset), the static base cycles, and
/// whether the op executes from RAM (and therefore pays the contention
/// stall when its data access also hits RAM).
#[derive(Debug, Clone, Copy)]
pub(crate) struct MemCharge {
    pub(crate) flat_base: u16,
    pub(crate) base_cycles: u8,
    pub(crate) contend: bool,
}

/// A prefused static charge aggregate: `(bucket, cycles)`, where a zeroed
/// slot charges zero cycles to bucket zero (a no-op).
pub(crate) type ChargeSlot = (u16, u32);

/// One decoded operation.  Compact and fixed-size: register operands are
/// raw indices, push/pop register lists live in a side table, and literal
/// loads have been resolved into plain constants at decode time.
///
/// Ops whose cycle charge is statically known carry no charge at all —
/// their cycles are prefused into the owning chunk's aggregate slots
/// ([`Chunk::charges`]), spilling into [`Op::Charge`] only for post-call
/// segments or when a chunk touches more than two static buckets.
///
/// The multi-destination variants are **superinstructions**: the hottest
/// dynamic op pairs, triples and quads of the BEEBS sweep, fused at decode
/// time so the interpreter pays one dispatch instead of two to four.  A
/// fused arm executes its component ops completely and in order
/// (destination writes included), so fusion is semantics-preserving for
/// *any* adjacent ops of the right shapes, whatever their register
/// dependencies.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    /// Charge a prefused cycle aggregate to one counter bucket (post-call
    /// segments, or overflow from the [`Chunk::charges`] slots).
    Charge {
        bucket: u16,
        cycles: u32,
    },
    MovImm {
        rd: u8,
        imm: i32,
    },
    MovReg {
        rd: u8,
        rm: u8,
    },
    MovCond {
        cond: Cond,
        rd: u8,
        imm: i32,
    },
    AddImm {
        rd: u8,
        rn: u8,
        imm: i32,
    },
    AddReg {
        rd: u8,
        rn: u8,
        rm: u8,
    },
    SubImm {
        rd: u8,
        rn: u8,
        imm: i32,
    },
    SubReg {
        rd: u8,
        rn: u8,
        rm: u8,
    },
    RsbImm {
        rd: u8,
        rn: u8,
        imm: i32,
    },
    Mul {
        rd: u8,
        rn: u8,
        rm: u8,
    },
    Sdiv {
        rd: u8,
        rn: u8,
        rm: u8,
    },
    Udiv {
        rd: u8,
        rn: u8,
        rm: u8,
    },
    And {
        rd: u8,
        rn: u8,
        rm: u8,
    },
    Orr {
        rd: u8,
        rn: u8,
        rm: u8,
    },
    Eor {
        rd: u8,
        rn: u8,
        rm: u8,
    },
    Bic {
        rd: u8,
        rn: u8,
        rm: u8,
    },
    Mvn {
        rd: u8,
        rm: u8,
    },
    AndImm {
        rd: u8,
        rn: u8,
        imm: i32,
    },
    OrrImm {
        rd: u8,
        rn: u8,
        imm: i32,
    },
    EorImm {
        rd: u8,
        rn: u8,
        imm: i32,
    },
    ShiftImm {
        op: ShiftOp,
        rd: u8,
        rm: u8,
        imm: u8,
    },
    ShiftReg {
        op: ShiftOp,
        rd: u8,
        rn: u8,
        rm: u8,
    },
    CmpImm {
        rn: u8,
        imm: i32,
    },
    CmpReg {
        rn: u8,
        rm: u8,
    },
    Load {
        rd: u8,
        base: u8,
        width: MemWidth,
        charge: MemCharge,
        offset: i32,
    },
    LoadIdx {
        rd: u8,
        base: u8,
        index: u8,
        width: MemWidth,
        charge: MemCharge,
    },
    Store {
        rs: u8,
        base: u8,
        width: MemWidth,
        charge: MemCharge,
        offset: i32,
    },
    StoreIdx {
        rs: u8,
        base: u8,
        index: u8,
        width: MemWidth,
        charge: MemCharge,
    },
    Push {
        start: u32,
        len: u16,
    },
    Pop {
        start: u32,
        len: u16,
    },
    /// `mov rd1, #imm1; mov rd2, #imm2` (covers resolved literal loads).
    MovImm2 {
        rd1: u8,
        imm1: i32,
        rd2: u8,
        imm2: i32,
    },
    /// `mov rd1, #imm; mul rd2, rn, rm`.
    MovImmMul {
        rd1: u8,
        imm: i32,
        rd2: u8,
        rn: u8,
        rm: u8,
    },
    /// `mul rd1, rn1, rm1; add rd2, rn2, rm2`.
    MulAddReg {
        rd1: u8,
        rn1: u8,
        rm1: u8,
        rd2: u8,
        rn2: u8,
        rm2: u8,
    },
    /// `lsl/lsr/asr rd1, rm1, #imm; add rd2, rn2, rm2`.
    ShiftImmAddReg {
        op: ShiftOp,
        rd1: u8,
        rm1: u8,
        imm: u8,
        rd2: u8,
        rn2: u8,
        rm2: u8,
    },
    /// `add rd1, rn1, rm1; lsl/lsr/asr rd2, rm2, #imm`.
    AddRegShiftImm {
        rd1: u8,
        rn1: u8,
        rm1: u8,
        op: ShiftOp,
        rd2: u8,
        rm2: u8,
        imm: u8,
    },
    /// `add rd1, rn1, #imm; mov rd2, rm2`.
    AddImmMovReg {
        rd1: u8,
        rn1: u8,
        imm: i32,
        rd2: u8,
        rm2: u8,
    },
    /// `add rd1, rn1, rm1; ldr rd2, [base, #offset]`.
    AddRegLoad {
        rd1: u8,
        rn1: u8,
        rm1: u8,
        rd2: u8,
        base: u8,
        width: MemWidth,
        charge: MemCharge,
        offset: i32,
    },
    /// `ldr rd1, [base, #offset]; add rd2, rn2, rm2`.
    LoadAddReg {
        rd1: u8,
        base: u8,
        width: MemWidth,
        charge: MemCharge,
        offset: i32,
        rd2: u8,
        rn2: u8,
        rm2: u8,
    },
    /// `lsl rd1, rm1, #imm; add rd2, rn2, rm2; ldr rd3, [base, #offset]`
    /// — the array-indexing idiom, the hottest triple of the sweep.
    ShiftImmAddRegLoad {
        op: ShiftOp,
        rd1: u8,
        rm1: u8,
        imm: u8,
        rd2: u8,
        rn2: u8,
        rm2: u8,
        rd3: u8,
        base: u8,
        width: MemWidth,
        charge: MemCharge,
        offset: i32,
    },
    /// `add rd1, rn1, rm1; lsl rd2, rm2, #imm; add rd3, rn3, rm3;
    /// ldr rd4, [base, #offset]` — two-level indexing, the hottest quad.
    AddRegShiftImmAddRegLoad {
        rd1: u8,
        rn1: u8,
        rm1: u8,
        op: ShiftOp,
        rd2: u8,
        rm2: u8,
        imm: u8,
        rd3: u8,
        rn3: u8,
        rm3: u8,
        rd4: u8,
        base: u8,
        width: MemWidth,
        charge: MemCharge,
        offset: i32,
    },
    /// `mov rd1, #imm1; mov rd2, #imm2; mul rd3, rn, rm`.
    MovImm2Mul {
        rd1: u8,
        imm1: i32,
        rd2: u8,
        imm2: i32,
        rd3: u8,
        rn: u8,
        rm: u8,
    },
    /// `mov rd1, #imm; mul rd2, rn, rm; ldr rd3, [base, #offset]`.
    MovImmMulLoad {
        rd1: u8,
        imm: i32,
        rd2: u8,
        rn: u8,
        rm: u8,
        rd3: u8,
        base: u8,
        width: MemWidth,
        charge: MemCharge,
        offset: i32,
    },
    /// `ldr rd1, [base, #offset]; add rd2, rn2, rm2; lsl rd3, rm3, #imm`.
    LoadAddRegShiftImm {
        rd1: u8,
        base: u8,
        width: MemWidth,
        charge: MemCharge,
        offset: i32,
        rd2: u8,
        rn2: u8,
        rm2: u8,
        op: ShiftOp,
        rd3: u8,
        rm3: u8,
        imm: u8,
    },
    /// `mul rd1, rn1, rm1; add rd2, rn2, rm2; mov rd3, rm3`.
    MulAddRegMovReg {
        rd1: u8,
        rn1: u8,
        rm1: u8,
        rd2: u8,
        rn2: u8,
        rm2: u8,
        rd3: u8,
        rm3: u8,
    },
    /// `add rd1, rn1, #imm; mov rd2, rm2; str rs, [base, #offset]`.
    AddImmMovRegStore {
        rd1: u8,
        rn1: u8,
        imm: i32,
        rd2: u8,
        rm2: u8,
        rs: u8,
        base: u8,
        width: MemWidth,
        charge: MemCharge,
        offset: i32,
    },
    /// `add rd1, rn1, rm1; ldr rd2, [base, #offset]; mul rd3, rn3, rm3`.
    AddRegLoadMul {
        rd1: u8,
        rn1: u8,
        rm1: u8,
        rd2: u8,
        base: u8,
        width: MemWidth,
        charge: MemCharge,
        offset: i32,
        rd3: u8,
        rn3: u8,
        rm3: u8,
    },
    /// `add rd1, rn1, rm1; ldr rd2, [base, #offset]; mov rd3, #imm`.
    AddRegLoadMovImm {
        rd1: u8,
        rn1: u8,
        rm1: u8,
        rd2: u8,
        base: u8,
        width: MemWidth,
        charge: MemCharge,
        offset: i32,
        rd3: u8,
        imm: i32,
    },
}

/// How control leaves a chunk.  All targets are direct indices into the
/// chunk array, resolved and validated at decode time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ChunkExit {
    /// `bl callee`: charge, push the next chunk, enter the callee's entry
    /// chunk.
    Call {
        target: u32,
        callee: u32,
        bucket: u16,
        cycles: u8,
    },
    /// Unconditional transfer (branch, fall-through, or their indirect
    /// forms — after decoding only the cycle cost distinguishes them).
    Jump {
        target: u32,
        bucket: u16,
        cycles: u8,
    },
    /// Flag-conditional two-way transfer.
    CondJump {
        cond: Cond,
        target: u32,
        fallthrough: u32,
        taken_cycles: u8,
        not_taken_cycles: u8,
        bucket: u16,
    },
    /// `cbz`/`cbnz`-style two-way transfer on a register compare.
    CmpJump {
        nonzero: bool,
        rn: u8,
        target: u32,
        fallthrough: u32,
        taken_cycles: u8,
        not_taken_cycles: u8,
        bucket: u16,
    },
    /// `cmp rn, #imm` fused with the conditional branch that consumes it —
    /// the most common block ending by far.  Still updates the flags (later
    /// code may read them).
    CmpImmCondJump {
        rn: u8,
        imm: i32,
        cond: Cond,
        target: u32,
        fallthrough: u32,
        taken_cycles: u8,
        not_taken_cycles: u8,
        bucket: u16,
    },
    /// `cmp rn, rm` fused with the conditional branch that consumes it.
    CmpRegCondJump {
        rn: u8,
        rm: u8,
        cond: Cond,
        target: u32,
        fallthrough: u32,
        taken_cycles: u8,
        not_taken_cycles: u8,
        bucket: u16,
    },
    /// Return to the caller (or finish the run at the outermost frame).
    Return { bucket: u16, cycles: u8 },
}

/// Sentinel for chunks that resume a block after a call (they are not
/// block heads and must not bump the block's execution count).
pub(crate) const NOT_A_HEAD: u32 = u32::MAX;

/// One straight-line piece of a basic block: a run of ops ending either at
/// a call site or at the block's terminator.  Chunk boundaries are exactly
/// the reference interpreter's scheduling points, which is what keeps the
/// cycle-limit check bit-identical.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Chunk {
    pub(crate) op_start: u32,
    pub(crate) op_end: u32,
    /// Flat block index for profile counting, or [`NOT_A_HEAD`].
    pub(crate) block: u32,
    /// Prefused static `(bucket, cycles)` charge aggregates, applied
    /// unconditionally on chunk entry (a `(0, 0)` slot charges nothing).
    pub(crate) charges: [ChargeSlot; 2],
    pub(crate) exit: ChunkExit,
}

/// Decode-time fusion of two adjacent ops into one superinstruction, if
/// the pair matches one of the hot shapes.
fn fuse(a: Op, b: Op) -> Option<Op> {
    Some(match (a, b) {
        (Op::MovImm { rd: rd1, imm: imm1 }, Op::MovImm { rd: rd2, imm: imm2 }) => Op::MovImm2 {
            rd1,
            imm1,
            rd2,
            imm2,
        },
        (Op::MovImm { rd: rd1, imm }, Op::Mul { rd, rn, rm }) => Op::MovImmMul {
            rd1,
            imm,
            rd2: rd,
            rn,
            rm,
        },
        (
            Op::Mul {
                rd: rd1,
                rn: rn1,
                rm: rm1,
            },
            Op::AddReg { rd, rn, rm },
        ) => Op::MulAddReg {
            rd1,
            rn1,
            rm1,
            rd2: rd,
            rn2: rn,
            rm2: rm,
        },
        (
            Op::ShiftImm {
                op,
                rd: rd1,
                rm: rm1,
                imm,
            },
            Op::AddReg { rd, rn, rm },
        ) => Op::ShiftImmAddReg {
            op,
            rd1,
            rm1,
            imm,
            rd2: rd,
            rn2: rn,
            rm2: rm,
        },
        (
            Op::AddReg {
                rd: rd1,
                rn: rn1,
                rm: rm1,
            },
            Op::ShiftImm { op, rd, rm, imm },
        ) => Op::AddRegShiftImm {
            rd1,
            rn1,
            rm1,
            op,
            rd2: rd,
            rm2: rm,
            imm,
        },
        (
            Op::AddImm {
                rd: rd1,
                rn: rn1,
                imm,
            },
            Op::MovReg { rd, rm },
        ) => Op::AddImmMovReg {
            rd1,
            rn1,
            imm,
            rd2: rd,
            rm2: rm,
        },
        (
            Op::AddReg {
                rd: rd1,
                rn: rn1,
                rm: rm1,
            },
            Op::Load {
                rd,
                base,
                width,
                charge,
                offset,
            },
        ) => Op::AddRegLoad {
            rd1,
            rn1,
            rm1,
            rd2: rd,
            base,
            width,
            charge,
            offset,
        },
        (
            Op::Load {
                rd,
                base,
                width,
                charge,
                offset,
            },
            Op::AddReg { rd: rd2, rn, rm },
        ) => Op::LoadAddReg {
            rd1: rd,
            base,
            width,
            charge,
            offset,
            rd2,
            rn2: rn,
            rm2: rm,
        },
        // Second-round rules: grow pair superinstructions into the hot
        // triples and quads (a later peephole pass sees the pair as `a`).
        (
            Op::ShiftImmAddReg {
                op,
                rd1,
                rm1,
                imm,
                rd2,
                rn2,
                rm2,
            },
            Op::Load {
                rd,
                base,
                width,
                charge,
                offset,
            },
        ) => Op::ShiftImmAddRegLoad {
            op,
            rd1,
            rm1,
            imm,
            rd2,
            rn2,
            rm2,
            rd3: rd,
            base,
            width,
            charge,
            offset,
        },
        (
            Op::AddRegShiftImm {
                rd1,
                rn1,
                rm1,
                op,
                rd2,
                rm2,
                imm,
            },
            Op::AddRegLoad {
                rd1: rd3,
                rn1: rn3,
                rm1: rm3,
                rd2: rd4,
                base,
                width,
                charge,
                offset,
            },
        ) => Op::AddRegShiftImmAddRegLoad {
            rd1,
            rn1,
            rm1,
            op,
            rd2,
            rm2,
            imm,
            rd3,
            rn3,
            rm3,
            rd4,
            base,
            width,
            charge,
            offset,
        },
        (
            Op::MovImm2 {
                rd1,
                imm1,
                rd2,
                imm2,
            },
            Op::Mul { rd, rn, rm },
        ) => Op::MovImm2Mul {
            rd1,
            imm1,
            rd2,
            imm2,
            rd3: rd,
            rn,
            rm,
        },
        (
            Op::MovImmMul {
                rd1,
                imm,
                rd2,
                rn,
                rm,
            },
            Op::Load {
                rd,
                base,
                width,
                charge,
                offset,
            },
        ) => Op::MovImmMulLoad {
            rd1,
            imm,
            rd2,
            rn,
            rm,
            rd3: rd,
            base,
            width,
            charge,
            offset,
        },
        (
            Op::LoadAddReg {
                rd1,
                base,
                width,
                charge,
                offset,
                rd2,
                rn2,
                rm2,
            },
            Op::ShiftImm { op, rd, rm, imm },
        ) => Op::LoadAddRegShiftImm {
            rd1,
            base,
            width,
            charge,
            offset,
            rd2,
            rn2,
            rm2,
            op,
            rd3: rd,
            rm3: rm,
            imm,
        },
        (
            Op::MulAddReg {
                rd1,
                rn1,
                rm1,
                rd2,
                rn2,
                rm2,
            },
            Op::MovReg { rd, rm },
        ) => Op::MulAddRegMovReg {
            rd1,
            rn1,
            rm1,
            rd2,
            rn2,
            rm2,
            rd3: rd,
            rm3: rm,
        },
        (
            Op::AddImmMovReg {
                rd1,
                rn1,
                imm,
                rd2,
                rm2,
            },
            Op::Store {
                rs,
                base,
                width,
                charge,
                offset,
            },
        ) => Op::AddImmMovRegStore {
            rd1,
            rn1,
            imm,
            rd2,
            rm2,
            rs,
            base,
            width,
            charge,
            offset,
        },
        (
            Op::AddRegLoad {
                rd1,
                rn1,
                rm1,
                rd2,
                base,
                width,
                charge,
                offset,
            },
            Op::Mul { rd, rn, rm },
        ) => Op::AddRegLoadMul {
            rd1,
            rn1,
            rm1,
            rd2,
            base,
            width,
            charge,
            offset,
            rd3: rd,
            rn3: rn,
            rm3: rm,
        },
        (
            Op::AddRegLoad {
                rd1,
                rn1,
                rm1,
                rd2,
                base,
                width,
                charge,
                offset,
            },
            Op::MovImm { rd, imm },
        ) => Op::AddRegLoadMovImm {
            rd1,
            rn1,
            rm1,
            rd2,
            base,
            width,
            charge,
            offset,
            rd3: rd,
            imm,
        },
        _ => return None,
    })
}

/// Greedy left-to-right fusion over a chunk body, repeated until a pass
/// fuses nothing more, so pair superinstructions grow into the triple and
/// quad patterns.
pub(crate) fn peephole(body: &mut Vec<Op>) {
    loop {
        let before = body.len();
        let mut out = Vec::with_capacity(body.len());
        let mut i = 0;
        while i < body.len() {
            if i + 1 < body.len() {
                if let Some(f) = fuse(body[i], body[i + 1]) {
                    out.push(f);
                    i += 2;
                    continue;
                }
            }
            out.push(body[i]);
            i += 1;
        }
        *body = out;
        if body.len() == before {
            break;
        }
    }
}

/// A program lowered for the decoded execution engine, together with the
/// pristine memory image and data layout it was decoded against.
///
/// Build one with [`Board::decode`](crate::board::Board::decode) and run it
/// any number of times with
/// [`Board::run_decoded`](crate::board::Board::run_decoded) — each run
/// clones the memory image instead of re-laying-out the program, and decode
/// work (flattening, validation, symbol resolution, charge fusion) is never
/// repeated.  [`BatchRunner::run_configs`](crate::batch::BatchRunner::run_configs)
/// relies on exactly this to decode once for N configurations.
///
/// A `DecodedProgram` is tied to the board that decoded it (memory map and
/// timing model are baked into the lowered ops); run it on the same board.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    pub(crate) ops: Vec<Op>,
    pub(crate) chunks: Vec<Chunk>,
    pub(crate) reg_lists: Vec<Reg>,
    pub(crate) entry_chunk: u32,
    /// Flat block index → `(function, block)`, for the profile fold.
    pub(crate) block_map: Vec<BlockRef>,
    pub(crate) num_functions: usize,
    pub(crate) memory: Memory,
    pub(crate) layout: DataLayout,
}

/// Decode-time emission state for one program.
struct Emitter {
    ops: Vec<Op>,
    chunks: Vec<Chunk>,
    reg_lists: Vec<Reg>,
    /// Chunk index of each flat block's head chunk.
    head_chunk: Vec<u32>,
    /// First flat block index of each function.
    func_block_base: Vec<usize>,
}

impl DecodedProgram {
    /// Lower `program` against an already-built memory image and layout.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Invalid`] when the program is structurally
    /// broken: dangling `LdrLit` symbols, out-of-range callees or branch
    /// targets, empty functions, or a missing entry function.
    pub fn decode(
        program: &MachineProgram,
        memory: Memory,
        layout: DataLayout,
        timing: &TimingModel,
    ) -> Result<DecodedProgram, DecodeError> {
        if program.entry.index() >= program.functions.len() {
            return Err(DecodeError::Invalid(format!(
                "entry function {} out of range",
                program.entry
            )));
        }

        // Flat block numbering.
        let mut block_map = Vec::new();
        let mut func_block_base = Vec::with_capacity(program.functions.len());
        for (fi, f) in program.functions.iter().enumerate() {
            func_block_base.push(block_map.len());
            if f.blocks.is_empty() {
                return Err(DecodeError::Invalid(format!(
                    "function {} has no blocks",
                    f.name
                )));
            }
            for bi in 0..f.blocks.len() {
                block_map.push(BlockRef::new(fi, bi));
            }
        }

        let mut e = Emitter {
            ops: Vec::new(),
            chunks: Vec::new(),
            reg_lists: Vec::new(),
            head_chunk: vec![0; block_map.len()],
            func_block_base,
        };

        // Emission: one pass in (function, block) order.  Branch targets
        // and callee entries are emitted as flat block indices and patched
        // to chunk indices afterwards (forward branches make a single
        // direct pass impossible).
        for (fi, f) in program.functions.iter().enumerate() {
            for bi in 0..f.blocks.len() {
                e.lower_block(program, fi, bi, &layout, timing)?;
            }
        }

        // Patch pass: flat block index → chunk index of its head chunk.
        for chunk in &mut e.chunks {
            match &mut chunk.exit {
                ChunkExit::Jump { target, .. } => *target = e.head_chunk[*target as usize],
                ChunkExit::CondJump {
                    target,
                    fallthrough,
                    ..
                }
                | ChunkExit::CmpJump {
                    target,
                    fallthrough,
                    ..
                }
                | ChunkExit::CmpImmCondJump {
                    target,
                    fallthrough,
                    ..
                }
                | ChunkExit::CmpRegCondJump {
                    target,
                    fallthrough,
                    ..
                } => {
                    *target = e.head_chunk[*target as usize];
                    *fallthrough = e.head_chunk[*fallthrough as usize];
                }
                ChunkExit::Call { target, callee, .. } => {
                    *target = e.head_chunk[e.func_block_base[*callee as usize]];
                }
                ChunkExit::Return { .. } => {}
            }
        }

        let entry_chunk = e.head_chunk[e.func_block_base[program.entry.index()]];
        Ok(DecodedProgram {
            ops: e.ops,
            chunks: e.chunks,
            reg_lists: e.reg_lists,
            entry_chunk,
            block_map,
            num_functions: program.functions.len(),
            memory,
            layout,
        })
    }

    /// The data layout the program was decoded against.
    pub fn layout(&self) -> &DataLayout {
        &self.layout
    }

    /// Number of decoded operations (spilled charge aggregates included).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of straight-line chunks the blocks were split into.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }
}

impl Emitter {
    /// Lower one basic block into chunks: the (fused) body segments split
    /// at calls, each with its prefused charges and decoded exit.
    fn lower_block(
        &mut self,
        program: &MachineProgram,
        fi: usize,
        bi: usize,
        layout: &DataLayout,
        timing: &TimingModel,
    ) -> Result<(), DecodeError> {
        let f = &program.functions[fi];
        let b = &f.blocks[bi];
        let exec = b.section;
        let flat_block = (self.func_block_base[fi] + bi) as u32;
        self.head_chunk[flat_block as usize] = self.chunks.len() as u32;
        let context = |what: &str| format!("{}:{bi} {what}", f.name);

        let alu = CycleCounters::flat_index(InstClass::Alu, exec, None);
        let branch_bucket = CycleCounters::flat_index(InstClass::Branch, exec, None);

        // Flash wait-state penalties are statically known per block:
        // RAM-resident code pays none, flash-resident code pays the fetch
        // penalty on every instruction and the refill/call penalties on
        // control transfers — so they prefuse into the static charges.
        let (instr_pen, call_pen) = match exec {
            Section::Flash => (
                timing.flash_instr_penalty_cycles(),
                timing.flash_call_penalty_cycles(),
            ),
            Section::Ram => (0, 0),
        };

        // Fused static charges and execution ops of the current segment.
        let mut fused: BTreeMap<u16, u64> = BTreeMap::new();
        let mut body: Vec<Op> = Vec::new();
        let mut is_head = true;

        for inst in &b.insts {
            match inst {
                Inst::Nop => {
                    // Execution is a no-op; only the charge survives decoding.
                    *fused
                        .entry(CycleCounters::flat_index(InstClass::Nop, exec, None))
                        .or_insert(0) += inst.base_cycles() + instr_pen;
                }
                Inst::MovImm { rd, imm } => {
                    *fused.entry(alu).or_insert(0) += 1 + instr_pen;
                    body.push(Op::MovImm {
                        rd: rd.index() as u8,
                        imm: *imm,
                    });
                }
                Inst::MovReg { rd, rm } => {
                    *fused.entry(alu).or_insert(0) += 1 + instr_pen;
                    body.push(Op::MovReg {
                        rd: rd.index() as u8,
                        rm: rm.index() as u8,
                    });
                }
                Inst::MovCond { cond, rd, imm } => {
                    *fused.entry(alu).or_insert(0) += 1 + instr_pen;
                    body.push(Op::MovCond {
                        cond: *cond,
                        rd: rd.index() as u8,
                        imm: *imm,
                    });
                }
                Inst::LdrLit { rd, value } => {
                    // Resolve the literal now: a symbol reference becomes a
                    // plain constant move, and a dangling symbol is a decode
                    // error instead of a per-execution lookup.
                    let v = match value {
                        LitValue::Const(c) => *c,
                        LitValue::Symbol(s) => {
                            *layout.symbol_addr.get(s.0 as usize).ok_or_else(|| {
                                DecodeError::Invalid(context(&format!(
                                    "literal references missing symbol {s}"
                                )))
                            })? as i32
                        }
                    };
                    // The literal pool lives alongside the code, so the data
                    // section equals the executing section — statically known.
                    let mut cycles = inst.base_cycles() + instr_pen;
                    if exec == Section::Ram {
                        cycles += timing.ram_load_contention_cycles;
                    }
                    *fused
                        .entry(CycleCounters::flat_index(InstClass::Load, exec, Some(exec)))
                        .or_insert(0) += cycles;
                    body.push(Op::MovImm {
                        rd: rd.index() as u8,
                        imm: v,
                    });
                }
                Inst::AddImm { rd, rn, imm } => {
                    *fused.entry(alu).or_insert(0) += 1 + instr_pen;
                    body.push(Op::AddImm {
                        rd: rd.index() as u8,
                        rn: rn.index() as u8,
                        imm: *imm,
                    });
                }
                Inst::AddReg { rd, rn, rm } => {
                    *fused.entry(alu).or_insert(0) += 1 + instr_pen;
                    body.push(Op::AddReg {
                        rd: rd.index() as u8,
                        rn: rn.index() as u8,
                        rm: rm.index() as u8,
                    });
                }
                Inst::SubImm { rd, rn, imm } => {
                    *fused.entry(alu).or_insert(0) += 1 + instr_pen;
                    body.push(Op::SubImm {
                        rd: rd.index() as u8,
                        rn: rn.index() as u8,
                        imm: *imm,
                    });
                }
                Inst::SubReg { rd, rn, rm } => {
                    *fused.entry(alu).or_insert(0) += 1 + instr_pen;
                    body.push(Op::SubReg {
                        rd: rd.index() as u8,
                        rn: rn.index() as u8,
                        rm: rm.index() as u8,
                    });
                }
                Inst::RsbImm { rd, rn, imm } => {
                    *fused.entry(alu).or_insert(0) += 1 + instr_pen;
                    body.push(Op::RsbImm {
                        rd: rd.index() as u8,
                        rn: rn.index() as u8,
                        imm: *imm,
                    });
                }
                Inst::Mul { rd, rn, rm } => {
                    *fused
                        .entry(CycleCounters::flat_index(InstClass::Mul, exec, None))
                        .or_insert(0) += inst.base_cycles() + instr_pen;
                    body.push(Op::Mul {
                        rd: rd.index() as u8,
                        rn: rn.index() as u8,
                        rm: rm.index() as u8,
                    });
                }
                Inst::Sdiv { rd, rn, rm } => {
                    *fused
                        .entry(CycleCounters::flat_index(InstClass::Div, exec, None))
                        .or_insert(0) += inst.base_cycles() + instr_pen;
                    body.push(Op::Sdiv {
                        rd: rd.index() as u8,
                        rn: rn.index() as u8,
                        rm: rm.index() as u8,
                    });
                }
                Inst::Udiv { rd, rn, rm } => {
                    *fused
                        .entry(CycleCounters::flat_index(InstClass::Div, exec, None))
                        .or_insert(0) += inst.base_cycles() + instr_pen;
                    body.push(Op::Udiv {
                        rd: rd.index() as u8,
                        rn: rn.index() as u8,
                        rm: rm.index() as u8,
                    });
                }
                Inst::And { rd, rn, rm } => {
                    *fused.entry(alu).or_insert(0) += 1 + instr_pen;
                    body.push(Op::And {
                        rd: rd.index() as u8,
                        rn: rn.index() as u8,
                        rm: rm.index() as u8,
                    });
                }
                Inst::Orr { rd, rn, rm } => {
                    *fused.entry(alu).or_insert(0) += 1 + instr_pen;
                    body.push(Op::Orr {
                        rd: rd.index() as u8,
                        rn: rn.index() as u8,
                        rm: rm.index() as u8,
                    });
                }
                Inst::Eor { rd, rn, rm } => {
                    *fused.entry(alu).or_insert(0) += 1 + instr_pen;
                    body.push(Op::Eor {
                        rd: rd.index() as u8,
                        rn: rn.index() as u8,
                        rm: rm.index() as u8,
                    });
                }
                Inst::Bic { rd, rn, rm } => {
                    *fused.entry(alu).or_insert(0) += 1 + instr_pen;
                    body.push(Op::Bic {
                        rd: rd.index() as u8,
                        rn: rn.index() as u8,
                        rm: rm.index() as u8,
                    });
                }
                Inst::Mvn { rd, rm } => {
                    *fused.entry(alu).or_insert(0) += 1 + instr_pen;
                    body.push(Op::Mvn {
                        rd: rd.index() as u8,
                        rm: rm.index() as u8,
                    });
                }
                Inst::AndImm { rd, rn, imm } => {
                    *fused.entry(alu).or_insert(0) += 1 + instr_pen;
                    body.push(Op::AndImm {
                        rd: rd.index() as u8,
                        rn: rn.index() as u8,
                        imm: *imm,
                    });
                }
                Inst::OrrImm { rd, rn, imm } => {
                    *fused.entry(alu).or_insert(0) += 1 + instr_pen;
                    body.push(Op::OrrImm {
                        rd: rd.index() as u8,
                        rn: rn.index() as u8,
                        imm: *imm,
                    });
                }
                Inst::EorImm { rd, rn, imm } => {
                    *fused.entry(alu).or_insert(0) += 1 + instr_pen;
                    body.push(Op::EorImm {
                        rd: rd.index() as u8,
                        rn: rn.index() as u8,
                        imm: *imm,
                    });
                }
                Inst::ShiftImm { op, rd, rm, imm } => {
                    *fused.entry(alu).or_insert(0) += 1 + instr_pen;
                    body.push(Op::ShiftImm {
                        op: *op,
                        rd: rd.index() as u8,
                        rm: rm.index() as u8,
                        imm: *imm,
                    });
                }
                Inst::ShiftReg { op, rd, rn, rm } => {
                    *fused.entry(alu).or_insert(0) += 1 + instr_pen;
                    body.push(Op::ShiftReg {
                        op: *op,
                        rd: rd.index() as u8,
                        rn: rn.index() as u8,
                        rm: rm.index() as u8,
                    });
                }
                Inst::CmpImm { rn, imm } => {
                    *fused.entry(alu).or_insert(0) += 1 + instr_pen;
                    body.push(Op::CmpImm {
                        rn: rn.index() as u8,
                        imm: *imm,
                    });
                }
                Inst::CmpReg { rn, rm } => {
                    *fused.entry(alu).or_insert(0) += 1 + instr_pen;
                    body.push(Op::CmpReg {
                        rn: rn.index() as u8,
                        rm: rm.index() as u8,
                    });
                }
                Inst::AddSp { delta } => {
                    // `add sp, sp, #delta` is just an immediate add after
                    // decoding.
                    *fused.entry(alu).or_insert(0) += 1 + instr_pen;
                    body.push(Op::AddImm {
                        rd: Reg::Sp.index() as u8,
                        rn: Reg::Sp.index() as u8,
                        imm: *delta,
                    });
                }
                Inst::Load {
                    rd,
                    base,
                    offset,
                    width,
                } => {
                    body.push(Op::Load {
                        rd: rd.index() as u8,
                        base: base.index() as u8,
                        width: *width,
                        charge: mem_charge(inst, InstClass::Load, exec, instr_pen),
                        offset: *offset,
                    });
                }
                Inst::LoadIdx {
                    rd,
                    base,
                    index,
                    width,
                } => {
                    body.push(Op::LoadIdx {
                        rd: rd.index() as u8,
                        base: base.index() as u8,
                        index: index.index() as u8,
                        width: *width,
                        charge: mem_charge(inst, InstClass::Load, exec, instr_pen),
                    });
                }
                Inst::Store {
                    rs,
                    base,
                    offset,
                    width,
                } => {
                    body.push(Op::Store {
                        rs: rs.index() as u8,
                        base: base.index() as u8,
                        width: *width,
                        charge: mem_charge(inst, InstClass::Store, exec, instr_pen),
                        offset: *offset,
                    });
                }
                Inst::StoreIdx {
                    rs,
                    base,
                    index,
                    width,
                } => {
                    body.push(Op::StoreIdx {
                        rs: rs.index() as u8,
                        base: base.index() as u8,
                        index: index.index() as u8,
                        width: *width,
                        charge: mem_charge(inst, InstClass::Store, exec, instr_pen),
                    });
                }
                Inst::Push { regs } => {
                    // The stack lives in RAM: the data section is static, so
                    // the charge prefuses even though execution can fault (a
                    // faulting run discards its counters, so charging early
                    // is unobservable).
                    *fused
                        .entry(CycleCounters::flat_index(
                            InstClass::Stack,
                            exec,
                            Some(Section::Ram),
                        ))
                        .or_insert(0) += inst.base_cycles() + instr_pen;
                    let start = self.reg_lists.len() as u32;
                    self.reg_lists.extend_from_slice(regs);
                    body.push(Op::Push {
                        start,
                        len: regs.len() as u16,
                    });
                }
                Inst::Pop { regs } => {
                    *fused
                        .entry(CycleCounters::flat_index(
                            InstClass::Stack,
                            exec,
                            Some(Section::Ram),
                        ))
                        .or_insert(0) += inst.base_cycles() + instr_pen;
                    let start = self.reg_lists.len() as u32;
                    self.reg_lists.extend_from_slice(regs);
                    body.push(Op::Pop {
                        start,
                        len: regs.len() as u16,
                    });
                }
                Inst::Bl { callee } => {
                    // A call ends the chunk; execution resumes at the chunk
                    // that follows in emission order.
                    let ci = *callee as usize;
                    if ci >= program.functions.len() {
                        return Err(DecodeError::Invalid(context(&format!(
                            "calls missing function fn{callee}"
                        ))));
                    }
                    let exit = ChunkExit::Call {
                        // Patched to the callee's entry chunk afterwards.
                        target: 0,
                        callee: *callee,
                        bucket: CycleCounters::flat_index(InstClass::Call, exec, None),
                        cycles: (inst.base_cycles() + call_pen) as u8,
                    };
                    self.flush_chunk(&mut fused, &mut body, is_head, flat_block, exit)?;
                    is_head = false;
                }
            }
        }

        // The terminator.
        let target_block = |t: BlockId| -> Result<u32, DecodeError> {
            if t.index() >= f.blocks.len() {
                return Err(DecodeError::Invalid(context(&format!(
                    "branches to out-of-range block {t}"
                ))));
            }
            Ok((self.func_block_base[fi] + t.index()) as u32)
        };
        let kind = b.term.kind();
        let (term_taken_pen, term_not_taken_pen) = match exec {
            Section::Flash => (
                timing.flash_terminator_penalty_cycles(kind, true),
                timing.flash_terminator_penalty_cycles(kind, false),
            ),
            Section::Ram => (0, 0),
        };
        let exit = match &b.term {
            Terminator::Branch { target }
            | Terminator::IndirectBranch { target }
            | Terminator::FallThrough { target }
            | Terminator::IndirectFallThrough { target } => ChunkExit::Jump {
                target: target_block(*target)?,
                bucket: branch_bucket,
                cycles: (kind.taken_cycles() + term_taken_pen) as u8,
            },
            Terminator::CondBranch {
                cond,
                target,
                fallthrough,
            }
            | Terminator::IndirectCondBranch {
                cond,
                target,
                fallthrough,
            } => {
                let target = target_block(*target)?;
                let fallthrough = target_block(*fallthrough)?;
                let taken_cycles = (kind.taken_cycles() + term_taken_pen) as u8;
                let not_taken_cycles = (kind.not_taken_cycles() + term_not_taken_pen) as u8;
                // Fuse the compare that feeds the branch into the exit —
                // `cmp` + conditional branch ends almost half of all
                // dynamic blocks.
                match body.last().copied() {
                    Some(Op::CmpImm { rn, imm }) => {
                        body.pop();
                        ChunkExit::CmpImmCondJump {
                            rn,
                            imm,
                            cond: *cond,
                            target,
                            fallthrough,
                            taken_cycles,
                            not_taken_cycles,
                            bucket: branch_bucket,
                        }
                    }
                    Some(Op::CmpReg { rn, rm }) => {
                        body.pop();
                        ChunkExit::CmpRegCondJump {
                            rn,
                            rm,
                            cond: *cond,
                            target,
                            fallthrough,
                            taken_cycles,
                            not_taken_cycles,
                            bucket: branch_bucket,
                        }
                    }
                    _ => ChunkExit::CondJump {
                        cond: *cond,
                        target,
                        fallthrough,
                        taken_cycles,
                        not_taken_cycles,
                        bucket: branch_bucket,
                    },
                }
            }
            Terminator::CompareBranch {
                nonzero,
                rn,
                target,
                fallthrough,
            }
            | Terminator::IndirectCompareBranch {
                nonzero,
                rn,
                target,
                fallthrough,
            } => ChunkExit::CmpJump {
                nonzero: *nonzero,
                rn: rn.index() as u8,
                target: target_block(*target)?,
                fallthrough: target_block(*fallthrough)?,
                taken_cycles: (kind.taken_cycles() + term_taken_pen) as u8,
                not_taken_cycles: (kind.not_taken_cycles() + term_not_taken_pen) as u8,
                bucket: branch_bucket,
            },
            Terminator::Return => ChunkExit::Return {
                bucket: branch_bucket,
                cycles: (kind.taken_cycles() + term_taken_pen) as u8,
            },
        };
        self.flush_chunk(&mut fused, &mut body, is_head, flat_block, exit)?;
        Ok(())
    }

    /// Emit the chunk under construction: fuse hot op runs, fill the
    /// inline charge slots (ascending bucket order, so emission is
    /// deterministic), spill any further buckets as [`Op::Charge`] ops,
    /// and append the execution ops.
    fn flush_chunk(
        &mut self,
        fused: &mut BTreeMap<u16, u64>,
        body: &mut Vec<Op>,
        is_head: bool,
        flat_block: u32,
        exit: ChunkExit,
    ) -> Result<(), DecodeError> {
        peephole(body);
        let op_start = self.ops.len() as u32;
        let mut charges = [(0u16, 0u32); 2];
        for (slot, (&bucket, &cycles)) in fused.iter().enumerate() {
            let cycles = u32::try_from(cycles).map_err(|_| {
                DecodeError::Invalid("straight-line cycle aggregate overflows u32".into())
            })?;
            if slot < charges.len() {
                charges[slot] = (bucket, cycles);
            } else {
                self.ops.push(Op::Charge { bucket, cycles });
            }
        }
        fused.clear();
        self.ops.append(body);
        self.chunks.push(Chunk {
            op_start,
            op_end: self.ops.len() as u32,
            block: if is_head { flat_block } else { NOT_A_HEAD },
            charges,
            exit,
        });
        Ok(())
    }
}

fn mem_charge(inst: &Inst, class: InstClass, exec: Section, instr_pen: u64) -> MemCharge {
    MemCharge {
        flat_base: CycleCounters::flat_index(class, exec, None),
        base_cycles: (inst.base_cycles() + instr_pen) as u8,
        contend: exec == Section::Ram,
    }
}

/// Mutable per-run state shared by every engine that drives the decoded
/// form (the match-dispatch engine, the threaded-dispatch engine, and the
/// tiered superblock engine).
pub(crate) struct ExecState {
    pub(crate) memory: Memory,
    pub(crate) regs: [i32; 16],
    pub(crate) flags: Flags,
    pub(crate) counters: CycleCounters,
    pub(crate) block_counts: Vec<u64>,
    pub(crate) call_counts: Vec<u64>,
    pub(crate) call_stack: Vec<u32>,
    pub(crate) load_pen: u64,
    pub(crate) store_pen: u64,
}

impl ExecState {
    /// Fresh per-run state for one execution of `prog` (pristine memory
    /// image, zeroed counters, SP at the top of RAM).
    pub(crate) fn new(prog: &DecodedProgram, timing: &TimingModel) -> ExecState {
        let mut regs = [0i32; 16];
        regs[Reg::Sp.index()] = prog.memory.map().initial_sp() as i32;
        ExecState {
            memory: prog.memory.clone(),
            regs,
            flags: Flags::default(),
            counters: CycleCounters::new(),
            block_counts: vec![0u64; prog.block_map.len()],
            call_counts: vec![0u64; prog.num_functions],
            call_stack: Vec::new(),
            load_pen: timing.ram_load_contention_cycles,
            store_pen: timing.ram_store_contention_cycles,
        }
    }

    /// Read a register.  Indices come from `Reg::index()` at decode time so
    /// they are always `< 16`; the mask proves it to the bounds checker.
    #[inline(always)]
    pub(crate) fn r(&self, i: u8) -> i32 {
        self.regs[(i & 15) as usize]
    }

    #[inline(always)]
    pub(crate) fn set_r(&mut self, i: u8, v: i32) {
        self.regs[(i & 15) as usize] = v;
    }

    /// Charge a load whose data section was just resolved; returns the
    /// cycles charged so the caller can maintain the running total in a
    /// register.
    #[inline]
    pub(crate) fn charge_load(&mut self, charge: MemCharge, section: Section) -> u64 {
        let mut cycles = charge.base_cycles as u64;
        if charge.contend && section == Section::Ram {
            cycles += self.load_pen;
        }
        self.counters.add_bucket(
            charge.flat_base + CycleCounters::data_offset(section),
            cycles,
        );
        cycles
    }

    /// Store counterpart of [`ExecState::charge_load`].
    #[inline]
    pub(crate) fn charge_store(&mut self, charge: MemCharge, section: Section) -> u64 {
        let mut cycles = charge.base_cycles as u64;
        if charge.contend && section == Section::Ram {
            cycles += self.store_pen;
        }
        self.counters.add_bucket(
            charge.flat_base + CycleCounters::data_offset(section),
            cycles,
        );
        cycles
    }
}

impl DecodedProgram {
    /// Execute the decoded program.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] on memory faults, call-stack overflow, or
    /// when `max_cycles` is exceeded (`RunError::BadProgram` cannot occur:
    /// everything it would report was validated at decode time).
    pub fn execute(
        &self,
        power: &PowerModel,
        timing: &TimingModel,
        max_cycles: u64,
    ) -> Result<CpuResult, RunError> {
        let mut st = ExecState::new(self, timing);

        // The running cycle total lives in a register, not in the counter
        // struct: the budget check would otherwise chain memory
        // read-modify-writes into the loop's critical path.  Buckets are
        // charged through `add_bucket` and the total is written back only
        // when the run completes.
        let mut total: u64 = 0;
        let mut pc = self.entry_chunk;
        loop {
            // The budget check sits at exactly the reference interpreter's
            // scheduling points (block entry, call entry, post-call
            // resume), with all of the previous chunk's charges already
            // applied — so `executed` is bit-identical.
            if total > max_cycles {
                return Err(RunError::CycleLimit {
                    limit: max_cycles,
                    executed: total,
                });
            }
            let chunk = &self.chunks[pc as usize];
            if chunk.block != NOT_A_HEAD {
                st.block_counts[chunk.block as usize] += 1;
            }
            // The chunk's prefused static charges: unconditional,
            // branchless (an unused slot charges zero cycles to bucket
            // zero).
            st.counters
                .add_bucket(chunk.charges[0].0, chunk.charges[0].1 as u64);
            st.counters
                .add_bucket(chunk.charges[1].0, chunk.charges[1].1 as u64);
            total += chunk.charges[0].1 as u64 + chunk.charges[1].1 as u64;
            for op in self.ops[chunk.op_start as usize..chunk.op_end as usize]
                .iter()
                .copied()
            {
                // Faults stay a compact `Copy` value inside the op bodies
                // and widen into a `RunError` only here, on the cold path.
                if let Err(fault) = exec_op(op, &self.reg_lists, &mut st, &mut total) {
                    return Err(RunError::Memory(MemError::from(fault)));
                }
            }
            match take_exit(&chunk.exit, &mut st, &mut total, pc)? {
                Some(next) => pc = next,
                None => return Ok(self.assemble(st, total, power, timing)),
            }
        }
    }

    /// Fold a finished run's state into a [`CpuResult`]: write the running
    /// total back, collapse the counter cube into the meter, and fold the
    /// flat profile counts.  Shared by every engine driving the decoded
    /// form, so the fold order (and therefore the float bits) cannot
    /// diverge between them.
    pub(crate) fn assemble(
        &self,
        mut st: ExecState,
        total: u64,
        power: &PowerModel,
        timing: &TimingModel,
    ) -> CpuResult {
        st.counters.set_total(total);
        let meter = st.counters.finish(power, timing);
        let mut profile = ProfileData::new();
        for (flat, &count) in st.block_counts.iter().enumerate() {
            profile.add_block_count(self.block_map[flat], count);
        }
        for (fi, &count) in st.call_counts.iter().enumerate() {
            profile.add_call_count(flashram_ir::FuncId(fi as u32), count);
        }
        CpuResult {
            return_value: st.regs[Reg::R0.index()],
            meter,
            profile,
        }
    }
}

/// Execute one decoded op against `st`, maintaining the caller's running
/// cycle total.
///
/// This is the single source of op semantics for the match-dispatch engine
/// and the superblock tier; `crate::dispatch` mirrors these bodies in its
/// per-variant handlers, and the equivalence suites hold the two in
/// lockstep.
#[inline(always)]
pub(crate) fn exec_op(
    op: Op,
    reg_lists: &[Reg],
    st: &mut ExecState,
    total: &mut u64,
) -> Result<(), Fault> {
    match op {
        Op::Charge { bucket, cycles } => {
            st.counters.add_bucket(bucket, cycles as u64);
            *total += cycles as u64;
        }
        Op::MovImm { rd, imm } => st.set_r(rd, imm),
        Op::MovReg { rd, rm } => st.set_r(rd, st.r(rm)),
        Op::MovCond { cond, rd, imm } => {
            if cond.holds(st.flags) {
                st.set_r(rd, imm);
            }
        }
        Op::AddImm { rd, rn, imm } => st.set_r(rd, st.r(rn).wrapping_add(imm)),
        Op::AddReg { rd, rn, rm } => st.set_r(rd, st.r(rn).wrapping_add(st.r(rm))),
        Op::SubImm { rd, rn, imm } => st.set_r(rd, st.r(rn).wrapping_sub(imm)),
        Op::SubReg { rd, rn, rm } => st.set_r(rd, st.r(rn).wrapping_sub(st.r(rm))),
        Op::RsbImm { rd, rn, imm } => st.set_r(rd, imm.wrapping_sub(st.r(rn))),
        Op::Mul { rd, rn, rm } => st.set_r(rd, st.r(rn).wrapping_mul(st.r(rm))),
        Op::Sdiv { rd, rn, rm } => {
            let divisor = st.r(rm);
            let v = if divisor == 0 {
                0
            } else {
                st.r(rn).wrapping_div(divisor)
            };
            st.set_r(rd, v);
        }
        Op::Udiv { rd, rn, rm } => {
            let divisor = st.r(rm) as u32;
            let v = (st.r(rn) as u32).checked_div(divisor).unwrap_or(0) as i32;
            st.set_r(rd, v);
        }
        Op::And { rd, rn, rm } => st.set_r(rd, st.r(rn) & st.r(rm)),
        Op::Orr { rd, rn, rm } => st.set_r(rd, st.r(rn) | st.r(rm)),
        Op::Eor { rd, rn, rm } => st.set_r(rd, st.r(rn) ^ st.r(rm)),
        Op::Bic { rd, rn, rm } => st.set_r(rd, st.r(rn) & !st.r(rm)),
        Op::Mvn { rd, rm } => st.set_r(rd, !st.r(rm)),
        Op::AndImm { rd, rn, imm } => st.set_r(rd, st.r(rn) & imm),
        Op::OrrImm { rd, rn, imm } => st.set_r(rd, st.r(rn) | imm),
        Op::EorImm { rd, rn, imm } => st.set_r(rd, st.r(rn) ^ imm),
        Op::ShiftImm { op, rd, rm, imm } => {
            st.set_r(rd, shift(op, st.r(rm), imm as u32));
        }
        Op::ShiftReg { op, rd, rn, rm } => {
            let amount = (st.r(rm) as u32) & 0xff;
            let v = if amount >= 32 {
                match op {
                    ShiftOp::Asr => st.r(rn) >> 31,
                    _ => 0,
                }
            } else {
                shift(op, st.r(rn), amount)
            };
            st.set_r(rd, v);
        }
        Op::CmpImm { rn, imm } => st.flags = Flags::from_cmp(st.r(rn), imm),
        Op::CmpReg { rn, rm } => st.flags = Flags::from_cmp(st.r(rn), st.r(rm)),
        Op::Load {
            rd,
            base,
            width,
            charge,
            offset,
        } => {
            let addr = (st.r(base) as u32).wrapping_add(offset as u32);
            let (v, section) = st.memory.read_fast(addr, width)?;
            st.set_r(rd, v);
            *total += st.charge_load(charge, section);
        }
        Op::LoadIdx {
            rd,
            base,
            index,
            width,
            charge,
        } => {
            let addr = (st.r(base) as u32).wrapping_add(st.r(index) as u32);
            let (v, section) = st.memory.read_fast(addr, width)?;
            st.set_r(rd, v);
            *total += st.charge_load(charge, section);
        }
        Op::Store {
            rs,
            base,
            width,
            charge,
            offset,
        } => {
            let addr = (st.r(base) as u32).wrapping_add(offset as u32);
            let section = st.memory.write_fast(addr, st.r(rs), width)?;
            *total += st.charge_store(charge, section);
        }
        Op::StoreIdx {
            rs,
            base,
            index,
            width,
            charge,
        } => {
            let addr = (st.r(base) as u32).wrapping_add(st.r(index) as u32);
            let section = st.memory.write_fast(addr, st.r(rs), width)?;
            *total += st.charge_store(charge, section);
        }
        Op::Push { start, len } => {
            let regs = &reg_lists[start as usize..start as usize + len as usize];
            let mut sp = st.regs[Reg::Sp.index()] as u32;
            sp = sp.wrapping_sub(4 * len as u32);
            for (i, r) in regs.iter().enumerate() {
                st.memory.write_fast(
                    sp.wrapping_add(4 * i as u32),
                    st.regs[r.index()],
                    MemWidth::Word,
                )?;
            }
            st.regs[Reg::Sp.index()] = sp as i32;
        }
        Op::Pop { start, len } => {
            let base = st.regs[Reg::Sp.index()] as u32;
            for i in 0..len as usize {
                let (v, _) = st
                    .memory
                    .read_fast(base.wrapping_add(4 * i as u32), MemWidth::Word)?;
                let r = reg_lists[start as usize + i];
                st.regs[r.index()] = v;
            }
            st.regs[Reg::Sp.index()] = (base + 4 * len as u32) as i32;
        }
        // Superinstructions: first op completely, then the second.
        Op::MovImm2 {
            rd1,
            imm1,
            rd2,
            imm2,
        } => {
            st.set_r(rd1, imm1);
            st.set_r(rd2, imm2);
        }
        Op::MovImmMul {
            rd1,
            imm,
            rd2,
            rn,
            rm,
        } => {
            st.set_r(rd1, imm);
            st.set_r(rd2, st.r(rn).wrapping_mul(st.r(rm)));
        }
        Op::MulAddReg {
            rd1,
            rn1,
            rm1,
            rd2,
            rn2,
            rm2,
        } => {
            st.set_r(rd1, st.r(rn1).wrapping_mul(st.r(rm1)));
            st.set_r(rd2, st.r(rn2).wrapping_add(st.r(rm2)));
        }
        Op::ShiftImmAddReg {
            op,
            rd1,
            rm1,
            imm,
            rd2,
            rn2,
            rm2,
        } => {
            st.set_r(rd1, shift(op, st.r(rm1), imm as u32));
            st.set_r(rd2, st.r(rn2).wrapping_add(st.r(rm2)));
        }
        Op::AddRegShiftImm {
            rd1,
            rn1,
            rm1,
            op,
            rd2,
            rm2,
            imm,
        } => {
            st.set_r(rd1, st.r(rn1).wrapping_add(st.r(rm1)));
            st.set_r(rd2, shift(op, st.r(rm2), imm as u32));
        }
        Op::AddImmMovReg {
            rd1,
            rn1,
            imm,
            rd2,
            rm2,
        } => {
            st.set_r(rd1, st.r(rn1).wrapping_add(imm));
            st.set_r(rd2, st.r(rm2));
        }
        Op::AddRegLoad {
            rd1,
            rn1,
            rm1,
            rd2,
            base,
            width,
            charge,
            offset,
        } => {
            st.set_r(rd1, st.r(rn1).wrapping_add(st.r(rm1)));
            let addr = (st.r(base) as u32).wrapping_add(offset as u32);
            let (v, section) = st.memory.read_fast(addr, width)?;
            st.set_r(rd2, v);
            *total += st.charge_load(charge, section);
        }
        Op::LoadAddReg {
            rd1,
            base,
            width,
            charge,
            offset,
            rd2,
            rn2,
            rm2,
        } => {
            let addr = (st.r(base) as u32).wrapping_add(offset as u32);
            let (v, section) = st.memory.read_fast(addr, width)?;
            st.set_r(rd1, v);
            *total += st.charge_load(charge, section);
            st.set_r(rd2, st.r(rn2).wrapping_add(st.r(rm2)));
        }
        Op::ShiftImmAddRegLoad {
            op,
            rd1,
            rm1,
            imm,
            rd2,
            rn2,
            rm2,
            rd3,
            base,
            width,
            charge,
            offset,
        } => {
            st.set_r(rd1, shift(op, st.r(rm1), imm as u32));
            st.set_r(rd2, st.r(rn2).wrapping_add(st.r(rm2)));
            let addr = (st.r(base) as u32).wrapping_add(offset as u32);
            let (v, section) = st.memory.read_fast(addr, width)?;
            st.set_r(rd3, v);
            *total += st.charge_load(charge, section);
        }
        Op::AddRegShiftImmAddRegLoad {
            rd1,
            rn1,
            rm1,
            op,
            rd2,
            rm2,
            imm,
            rd3,
            rn3,
            rm3,
            rd4,
            base,
            width,
            charge,
            offset,
        } => {
            st.set_r(rd1, st.r(rn1).wrapping_add(st.r(rm1)));
            st.set_r(rd2, shift(op, st.r(rm2), imm as u32));
            st.set_r(rd3, st.r(rn3).wrapping_add(st.r(rm3)));
            let addr = (st.r(base) as u32).wrapping_add(offset as u32);
            let (v, section) = st.memory.read_fast(addr, width)?;
            st.set_r(rd4, v);
            *total += st.charge_load(charge, section);
        }
        Op::MovImm2Mul {
            rd1,
            imm1,
            rd2,
            imm2,
            rd3,
            rn,
            rm,
        } => {
            st.set_r(rd1, imm1);
            st.set_r(rd2, imm2);
            st.set_r(rd3, st.r(rn).wrapping_mul(st.r(rm)));
        }
        Op::MovImmMulLoad {
            rd1,
            imm,
            rd2,
            rn,
            rm,
            rd3,
            base,
            width,
            charge,
            offset,
        } => {
            st.set_r(rd1, imm);
            st.set_r(rd2, st.r(rn).wrapping_mul(st.r(rm)));
            let addr = (st.r(base) as u32).wrapping_add(offset as u32);
            let (v, section) = st.memory.read_fast(addr, width)?;
            st.set_r(rd3, v);
            *total += st.charge_load(charge, section);
        }
        Op::LoadAddRegShiftImm {
            rd1,
            base,
            width,
            charge,
            offset,
            rd2,
            rn2,
            rm2,
            op,
            rd3,
            rm3,
            imm,
        } => {
            let addr = (st.r(base) as u32).wrapping_add(offset as u32);
            let (v, section) = st.memory.read_fast(addr, width)?;
            st.set_r(rd1, v);
            *total += st.charge_load(charge, section);
            st.set_r(rd2, st.r(rn2).wrapping_add(st.r(rm2)));
            st.set_r(rd3, shift(op, st.r(rm3), imm as u32));
        }
        Op::MulAddRegMovReg {
            rd1,
            rn1,
            rm1,
            rd2,
            rn2,
            rm2,
            rd3,
            rm3,
        } => {
            st.set_r(rd1, st.r(rn1).wrapping_mul(st.r(rm1)));
            st.set_r(rd2, st.r(rn2).wrapping_add(st.r(rm2)));
            st.set_r(rd3, st.r(rm3));
        }
        Op::AddImmMovRegStore {
            rd1,
            rn1,
            imm,
            rd2,
            rm2,
            rs,
            base,
            width,
            charge,
            offset,
        } => {
            st.set_r(rd1, st.r(rn1).wrapping_add(imm));
            st.set_r(rd2, st.r(rm2));
            let addr = (st.r(base) as u32).wrapping_add(offset as u32);
            let section = st.memory.write_fast(addr, st.r(rs), width)?;
            *total += st.charge_store(charge, section);
        }
        Op::AddRegLoadMul {
            rd1,
            rn1,
            rm1,
            rd2,
            base,
            width,
            charge,
            offset,
            rd3,
            rn3,
            rm3,
        } => {
            st.set_r(rd1, st.r(rn1).wrapping_add(st.r(rm1)));
            let addr = (st.r(base) as u32).wrapping_add(offset as u32);
            let (v, section) = st.memory.read_fast(addr, width)?;
            st.set_r(rd2, v);
            *total += st.charge_load(charge, section);
            st.set_r(rd3, st.r(rn3).wrapping_mul(st.r(rm3)));
        }
        Op::AddRegLoadMovImm {
            rd1,
            rn1,
            rm1,
            rd2,
            base,
            width,
            charge,
            offset,
            rd3,
            imm,
        } => {
            st.set_r(rd1, st.r(rn1).wrapping_add(st.r(rm1)));
            let addr = (st.r(base) as u32).wrapping_add(offset as u32);
            let (v, section) = st.memory.read_fast(addr, width)?;
            st.set_r(rd2, v);
            *total += st.charge_load(charge, section);
            st.set_r(rd3, imm);
        }
    }
    Ok(())
}

/// Apply a chunk's exit: charge the branch/call/return cycles, update the
/// flags and the call stack, and hand back the next chunk to dispatch —
/// `None` when the outermost frame returned and the run is complete.
/// Shared by every engine driving the decoded form.
#[inline(always)]
pub(crate) fn take_exit(
    exit: &ChunkExit,
    st: &mut ExecState,
    total: &mut u64,
    pc: u32,
) -> Result<Option<u32>, RunError> {
    match *exit {
        ChunkExit::Call {
            target,
            callee,
            bucket,
            cycles,
        } => {
            st.counters.add_bucket(bucket, cycles as u64);
            *total += cycles as u64;
            if st.call_stack.len() >= MAX_CALL_DEPTH {
                return Err(RunError::CallDepth(MAX_CALL_DEPTH));
            }
            st.call_counts[callee as usize] += 1;
            st.call_stack.push(pc + 1);
            Ok(Some(target))
        }
        ChunkExit::Jump {
            target,
            bucket,
            cycles,
        } => {
            st.counters.add_bucket(bucket, cycles as u64);
            *total += cycles as u64;
            Ok(Some(target))
        }
        ChunkExit::CondJump {
            cond,
            target,
            fallthrough,
            taken_cycles,
            not_taken_cycles,
            bucket,
        } => {
            let (next, cycles) = if cond.holds(st.flags) {
                (target, taken_cycles)
            } else {
                (fallthrough, not_taken_cycles)
            };
            st.counters.add_bucket(bucket, cycles as u64);
            *total += cycles as u64;
            Ok(Some(next))
        }
        ChunkExit::CmpJump {
            nonzero,
            rn,
            target,
            fallthrough,
            taken_cycles,
            not_taken_cycles,
            bucket,
        } => {
            let (next, cycles) = if (st.r(rn) != 0) == nonzero {
                (target, taken_cycles)
            } else {
                (fallthrough, not_taken_cycles)
            };
            st.counters.add_bucket(bucket, cycles as u64);
            *total += cycles as u64;
            Ok(Some(next))
        }
        ChunkExit::CmpImmCondJump {
            rn,
            imm,
            cond,
            target,
            fallthrough,
            taken_cycles,
            not_taken_cycles,
            bucket,
        } => {
            st.flags = Flags::from_cmp(st.r(rn), imm);
            let (next, cycles) = if cond.holds(st.flags) {
                (target, taken_cycles)
            } else {
                (fallthrough, not_taken_cycles)
            };
            st.counters.add_bucket(bucket, cycles as u64);
            *total += cycles as u64;
            Ok(Some(next))
        }
        ChunkExit::CmpRegCondJump {
            rn,
            rm,
            cond,
            target,
            fallthrough,
            taken_cycles,
            not_taken_cycles,
            bucket,
        } => {
            st.flags = Flags::from_cmp(st.r(rn), st.r(rm));
            let (next, cycles) = if cond.holds(st.flags) {
                (target, taken_cycles)
            } else {
                (fallthrough, not_taken_cycles)
            };
            st.counters.add_bucket(bucket, cycles as u64);
            *total += cycles as u64;
            Ok(Some(next))
        }
        ChunkExit::Return { bucket, cycles } => {
            st.counters.add_bucket(bucket, cycles as u64);
            *total += cycles as u64;
            Ok(st.call_stack.pop())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::Board;
    use flashram_ir::{FuncId, MachineBlock, MachineFunction};
    use flashram_isa::SymbolId;

    fn one_block_program(insts: Vec<Inst>) -> MachineProgram {
        MachineProgram {
            functions: vec![MachineFunction {
                name: "main".into(),
                blocks: vec![MachineBlock::new(insts, Terminator::Return)],
                frame_size: 0,
                num_params: 0,
                is_library: false,
            }],
            globals: vec![],
            entry: FuncId(0),
        }
    }

    fn decode(program: &MachineProgram) -> Result<DecodedProgram, DecodeError> {
        let board = Board::stm32vldiscovery();
        let (memory, layout) = Memory::load(program, board.map)?;
        DecodedProgram::decode(program, memory, layout, &board.timing)
    }

    #[test]
    fn ops_stay_compact() {
        // The whole point of the flattened form is a small, fixed op
        // stride; superinstruction variants must not balloon it.
        assert!(
            std::mem::size_of::<Op>() <= 24,
            "Op grew to {} bytes",
            std::mem::size_of::<Op>()
        );
    }

    #[test]
    fn hot_pairs_fuse_into_superinstructions() {
        let program = one_block_program(vec![
            Inst::MovImm {
                rd: Reg::R1,
                imm: 6,
            },
            Inst::Mul {
                rd: Reg::R0,
                rn: Reg::R1,
                rm: Reg::R1,
            },
            Inst::ShiftImm {
                op: ShiftOp::Lsl,
                rd: Reg::R2,
                rm: Reg::R0,
                imm: 1,
            },
            Inst::AddReg {
                rd: Reg::R0,
                rn: Reg::R0,
                rm: Reg::R2,
            },
        ]);
        let decoded = decode(&program).unwrap();
        // (movimm, mul) and (shiftimm, addreg) both fuse: two
        // superinstructions, with the charges and the return terminator in
        // the chunk metadata.
        assert_eq!(decoded.num_chunks(), 1);
        assert_eq!(decoded.num_ops(), 2);
        let board = Board::stm32vldiscovery();
        let out = decoded
            .execute(&board.power, &board.timing, u64::MAX)
            .unwrap();
        // r0 = 36, r2 = 72, r0 = 36 + 72.
        assert_eq!(out.return_value, 108);
        // Charges are unchanged by fusion: 3 ALU + 1 MUL + 3 return.
        assert_eq!(out.meter.cycles, 7);
    }

    #[test]
    fn dangling_literal_symbol_fails_at_decode() {
        let program = one_block_program(vec![Inst::LdrLit {
            rd: Reg::R0,
            value: LitValue::Symbol(SymbolId(3)),
        }]);
        let err = decode(&program).unwrap_err();
        let DecodeError::Invalid(why) = err else {
            panic!("expected Invalid, got {err:?}");
        };
        assert!(
            why.contains("missing symbol @3") && why.contains("main:0"),
            "error should name the symbol and the block: {why}"
        );
    }

    #[test]
    fn out_of_range_callee_fails_at_decode() {
        let program = one_block_program(vec![Inst::Bl { callee: 7 }]);
        let err = decode(&program).unwrap_err();
        assert!(matches!(err, DecodeError::Invalid(ref why) if why.contains("fn7")));
    }

    #[test]
    fn out_of_range_branch_target_fails_at_decode() {
        let mut program = one_block_program(vec![]);
        program.functions[0].blocks[0].term = Terminator::Branch { target: BlockId(9) };
        let err = decode(&program).unwrap_err();
        assert!(matches!(err, DecodeError::Invalid(ref why) if why.contains("out-of-range")));
    }

    #[test]
    fn empty_functions_and_bad_entries_fail_at_decode() {
        let mut no_blocks = one_block_program(vec![]);
        no_blocks.functions[0].blocks.clear();
        assert!(matches!(
            decode(&no_blocks),
            Err(DecodeError::Invalid(ref why)) if why.contains("no blocks")
        ));

        let mut bad_entry = one_block_program(vec![]);
        bad_entry.entry = FuncId(5);
        assert!(matches!(
            decode(&bad_entry),
            Err(DecodeError::Invalid(ref why)) if why.contains("entry function")
        ));
    }

    #[test]
    fn straight_line_alu_runs_prefuse_into_one_charge() {
        let program = one_block_program(vec![
            Inst::MovImm {
                rd: Reg::R0,
                imm: 1,
            },
            Inst::AddImm {
                rd: Reg::R0,
                rn: Reg::R0,
                imm: 2,
            },
            Inst::SubImm {
                rd: Reg::R0,
                rn: Reg::R0,
                imm: 1,
            },
        ]);
        let decoded = decode(&program).unwrap();
        // Three execution ops; the fused ALU charge rides in the chunk's
        // inline slots, so no Charge op appears in the stream.
        assert_eq!(decoded.num_chunks(), 1);
        assert_eq!(decoded.num_ops(), 3);
        let board = Board::stm32vldiscovery();
        let out = decoded
            .execute(&board.power, &board.timing, u64::MAX)
            .unwrap();
        assert_eq!(out.return_value, 2);
        // 3 ALU cycles + 3 for the return terminator.
        assert_eq!(out.meter.cycles, 6);
    }

    #[test]
    fn calls_split_blocks_into_segments() {
        let mut program = one_block_program(vec![
            Inst::MovImm {
                rd: Reg::R0,
                imm: 5,
            },
            Inst::Bl { callee: 1 },
            Inst::AddImm {
                rd: Reg::R0,
                rn: Reg::R0,
                imm: 1,
            },
        ]);
        program.functions.push(MachineFunction {
            name: "callee".into(),
            blocks: vec![MachineBlock::new(
                vec![Inst::AddImm {
                    rd: Reg::R0,
                    rn: Reg::R0,
                    imm: 10,
                }],
                Terminator::Return,
            )],
            frame_size: 0,
            num_params: 1,
            is_library: false,
        });
        let decoded = decode(&program).unwrap();
        assert_eq!(decoded.num_chunks(), 3, "main splits at the call");
        let board = Board::stm32vldiscovery();
        let out = decoded
            .execute(&board.power, &board.timing, u64::MAX)
            .unwrap();
        assert_eq!(out.return_value, 16);
        assert_eq!(
            out.profile.call_count(FuncId(1)),
            1,
            "callee counted exactly once"
        );
    }
}
