//! Batched, parallel board simulation.
//!
//! Every experiment in the reproduction — placement sweeps, opt-level
//! comparisons, figure regeneration — bottoms out in running many
//! independent [`MachineProgram`]s (or one program under many
//! configurations) on a [`Board`].  [`BatchRunner`] executes those jobs
//! across a pool of worker threads and collects the results **order-stably**:
//! the result vector lines up index-for-index with the job slice, no matter
//! how the scheduler interleaved the workers.
//!
//! Determinism is stronger than mere ordering: the interpreter accumulates
//! integer cycle counters and folds them into floating-point energy in a
//! fixed bucket order (see [`crate::energy::CycleCounters`]), and each job
//! owns its own CPU state, so a batched run returns results **bit-identical**
//! to running the same jobs one at a time on the same board.  The
//! `batch_equivalence` property tests and the `sim_perf` harness in
//! `flashram-bench` assert exactly that.
//!
//! # Example
//!
//! ```
//! use flashram_mcu::{BatchRunner, Board};
//! # use flashram_minicc::{compile_program, OptLevel, SourceUnit};
//! # let programs: Vec<_> = ["int main() { return 1; }", "int main() { return 2; }"]
//! #     .iter()
//! #     .map(|s| compile_program(&[SourceUnit::application(s)], OptLevel::O1).unwrap())
//! #     .collect();
//! let runner = BatchRunner::new(Board::stm32vldiscovery());
//! let results = runner.run_programs(&programs);
//! assert_eq!(results.len(), programs.len());
//! assert_eq!(results[1].as_ref().unwrap().return_value, 2);
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use flashram_ir::MachineProgram;

use crate::board::{Board, Engine, RunConfig, RunResult};
use crate::cpu::RunError;

/// A worker-thread pool that runs simulation jobs against one [`Board`]
/// and returns results in job order.
///
/// The runner is the intended substrate for anything that simulates more
/// than a handful of programs: the BEEBS sweeps in `flashram-bench`, the
/// `fig*` binaries, and the heavy integration tests.  Construction is cheap
/// (threads are scoped per call, not kept alive), so it is fine to build one
/// ad hoc around an existing board.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    board: Board,
    threads: NonZeroUsize,
}

/// One variant's outcome from [`BatchRunner::validate_against`].
#[derive(Debug, Clone)]
pub struct Validation {
    /// Whether the variant ran to completion **and** returned the
    /// baseline's value.
    pub matches: bool,
    /// The variant's own simulation outcome (kept even on mismatch so
    /// callers can report what the variant actually did).
    pub result: Result<RunResult, RunError>,
}

impl BatchRunner {
    /// A runner over `board` using all available CPU parallelism.
    pub fn new(board: Board) -> BatchRunner {
        let threads = std::thread::available_parallelism()
            .unwrap_or_else(|_| NonZeroUsize::new(1).expect("1 is nonzero"));
        BatchRunner { board, threads }
    }

    /// A runner with an explicit worker count (use `1` to force the
    /// sequential in-thread path, e.g. in differential tests).
    pub fn with_threads(board: Board, threads: NonZeroUsize) -> BatchRunner {
        BatchRunner { board, threads }
    }

    /// The board every job runs on.
    pub fn board(&self) -> &Board {
        &self.board
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Run every program with the default [`RunConfig`].
    ///
    /// `results[i]` is exactly what `self.board().run(&programs[i])` would
    /// return — including the error cases.
    pub fn run_programs(&self, programs: &[MachineProgram]) -> Vec<Result<RunResult, RunError>> {
        self.run_programs_with_config(programs, &RunConfig::default())
    }

    /// Run every program under one shared configuration.
    pub fn run_programs_with_config(
        &self,
        programs: &[MachineProgram],
        config: &RunConfig,
    ) -> Vec<Result<RunResult, RunError>> {
        self.map(programs, |board, program| {
            board.run_with_config(program, config)
        })
    }

    /// Run one program under each of several configurations (e.g. a
    /// cycle-budget sweep).  `results[i]` corresponds to `configs[i]`.
    ///
    /// The program is decoded **once** ([`Board::decode`]) and the shared
    /// [`DecodedProgram`](crate::decode::DecodedProgram) is executed under
    /// every configuration — N configs pay for one lowering, not N.  A
    /// program that fails to decode fails every slot with the same error,
    /// exactly as N independent [`Board::run_with_config`] calls would.
    pub fn run_configs(
        &self,
        program: &MachineProgram,
        configs: &[RunConfig],
    ) -> Vec<Result<RunResult, RunError>> {
        let decoded = match self.board.decode(program) {
            Ok(decoded) => decoded,
            Err(e) => return configs.iter().map(|_| Err(e.clone())).collect(),
        };
        self.map(configs, |board, config| board.run_decoded(&decoded, config))
    }

    /// [`BatchRunner::run_configs`] on an explicit engine: the per-program
    /// work (decode, and handler-table resolution for
    /// [`Engine::Threaded`]) is done **once** and shared across every
    /// configuration; the reference engine has no decoded form and runs
    /// each slot from scratch.  `results[i]` is exactly what
    /// [`Board::run_with_engine`] would return for `configs[i]`.
    pub fn run_configs_engine(
        &self,
        program: &MachineProgram,
        configs: &[RunConfig],
        engine: Engine,
    ) -> Vec<Result<RunResult, RunError>> {
        match engine {
            Engine::Reference => self.map(configs, |board, config| {
                board.run_reference_with_config(program, config)
            }),
            Engine::Decoded => self.run_configs(program, configs),
            Engine::Threaded => {
                let threaded = match self.board.prepare_threaded(program) {
                    Ok(threaded) => threaded,
                    Err(e) => return configs.iter().map(|_| Err(e.clone())).collect(),
                };
                self.map(configs, |board, config| {
                    board.run_threaded(&threaded, config)
                })
            }
            Engine::Superblock => {
                let threaded = match self.board.prepare_threaded(program) {
                    Ok(threaded) => threaded,
                    Err(e) => return configs.iter().map(|_| Err(e.clone())).collect(),
                };
                self.map(configs, |board, config| {
                    board.run_superblock(&threaded, config)
                })
            }
        }
    }

    /// Validation fan-out: run `baseline` once, then every variant across
    /// the pool, and report for each whether it reproduced the baseline's
    /// return value.  This is the substrate the service-layer stress/soak
    /// harness uses to spot-check that optimized placements still compute
    /// the same answer as the unmodified program.
    ///
    /// `validations[i]` corresponds to `variants[i]` (order-stable, like
    /// every runner method).  A variant that fails to run is reported with
    /// `matches == false` and the error kept in
    /// [`Validation::result`].
    ///
    /// # Errors
    ///
    /// Fails only when the **baseline** itself does not run — there is
    /// nothing to validate against in that case.
    pub fn validate_against(
        &self,
        baseline: &MachineProgram,
        variants: &[MachineProgram],
    ) -> Result<(RunResult, Vec<Validation>), RunError> {
        let base = self.board.run(baseline)?;
        let validations = self
            .run_programs(variants)
            .into_iter()
            .map(|result| Validation {
                matches: result
                    .as_ref()
                    .is_ok_and(|r| r.return_value == base.return_value),
                result,
            })
            .collect();
        Ok((base, validations))
    }

    /// The generic substrate: evaluate `f(board, &jobs[i])` for every job
    /// across the worker pool and return the results in job order.
    ///
    /// Jobs are handed out through an atomic cursor, so long and short jobs
    /// mix freely without idling workers; each worker buffers its
    /// `(index, result)` pairs locally and the pairs are sorted back into
    /// job order at the end.  With one worker (or one job) everything runs
    /// inline on the calling thread — no threads are spawned and the call
    /// behaves exactly like `jobs.iter().map(...)`.
    ///
    /// Panics in `f` propagate to the caller after all workers finish.
    pub fn map<J, R, F>(&self, jobs: &[J], f: F) -> Vec<R>
    where
        J: Sync,
        R: Send,
        F: Fn(&Board, &J) -> R + Sync,
    {
        let n = jobs.len();
        let workers = self.threads.get().min(n);
        if workers <= 1 {
            return jobs.iter().map(|j| f(&self.board, j)).collect();
        }

        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else { break };
                        local.push((i, f(&self.board, job)));
                    }
                    collected
                        .lock()
                        .expect("a worker panicked while holding the results lock")
                        .extend(local);
                });
            }
        });

        let mut pairs = collected
            .into_inner()
            .expect("a worker panicked while holding the results lock");
        debug_assert_eq!(pairs.len(), n, "every job must produce one result");
        pairs.sort_unstable_by_key(|(i, _)| *i);
        pairs.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashram_minicc::{compile_program, OptLevel, SourceUnit};

    fn compile(src: &str) -> MachineProgram {
        compile_program(&[SourceUnit::application(src)], OptLevel::O1).unwrap()
    }

    fn programs() -> Vec<MachineProgram> {
        (0..8)
            .map(|i| {
                // Mix long and short jobs so the scheduler actually interleaves.
                let loops = if i % 2 == 0 { 5 } else { 2000 };
                compile(&format!(
                    "int main() {{ int s = 0; for (int j = 0; j < {loops}; j++) {{ s += j; }} return s + {i}; }}"
                ))
            })
            .collect()
    }

    #[test]
    fn batched_results_are_bit_identical_to_sequential() {
        let board = Board::stm32vldiscovery();
        let programs = programs();
        let sequential: Vec<_> = programs.iter().map(|p| board.run(p)).collect();
        for threads in [1, 2, 7] {
            let runner =
                BatchRunner::with_threads(board.clone(), NonZeroUsize::new(threads).unwrap());
            let batched = runner.run_programs(&programs);
            assert_eq!(batched.len(), sequential.len());
            for (i, (b, s)) in batched.iter().zip(&sequential).enumerate() {
                let (b, s) = (b.as_ref().unwrap(), s.as_ref().unwrap());
                assert_eq!(b.return_value, s.return_value, "job {i}");
                assert_eq!(b.meter, s.meter, "job {i} meters diverge");
                assert_eq!(
                    b.energy_mj.to_bits(),
                    s.energy_mj.to_bits(),
                    "job {i} energy not bit-identical"
                );
                assert_eq!(b.profile, s.profile, "job {i}");
                assert_eq!(b.layout, s.layout, "job {i}");
            }
        }
    }

    #[test]
    fn errors_stay_in_their_slot() {
        let board = Board::stm32vldiscovery();
        let programs = vec![
            compile("int main() { return 1; }"),
            compile("int main() { while (1) { } return 0; }"),
            compile("int main() { return 3; }"),
        ];
        let runner = BatchRunner::with_threads(board, NonZeroUsize::new(3).unwrap());
        let results = runner.run_programs_with_config(&programs, &RunConfig { max_cycles: 5_000 });
        assert_eq!(results[0].as_ref().unwrap().return_value, 1);
        assert!(matches!(
            results[1],
            Err(RunError::CycleLimit { limit: 5_000, .. })
        ));
        assert_eq!(results[2].as_ref().unwrap().return_value, 3);
    }

    #[test]
    fn run_configs_sweeps_budgets_in_order() {
        let board = Board::stm32vldiscovery();
        let program = compile(
            "int main() { int s = 0; for (int i = 0; i < 1000; i++) { s += i; } return s; }",
        );
        let full = board.run(&program).unwrap();
        let configs = vec![
            RunConfig { max_cycles: 10 },
            RunConfig::default(),
            RunConfig { max_cycles: 10 },
        ];
        let runner = BatchRunner::new(board);
        let results = runner.run_configs(&program, &configs);
        assert!(matches!(
            results[0],
            Err(RunError::CycleLimit { limit: 10, .. })
        ));
        assert_eq!(
            results[1].as_ref().unwrap().cycles(),
            full.cycles(),
            "unbounded slot must match a plain run"
        );
        assert!(results[2].is_err());
    }

    #[test]
    fn run_configs_engine_matches_independent_runs_on_every_engine() {
        let board = Board::stm32vldiscovery();
        // Hot enough (2000 iterations) to tier up under the superblock
        // engine, with one budget slot expiring mid-loop.
        let program = compile(
            "int main() { int s = 0; for (int i = 0; i < 2000; i++) { s += i; } return s; }",
        );
        let configs = vec![
            RunConfig { max_cycles: 100 },
            RunConfig::default(),
            RunConfig { max_cycles: 20_000 },
        ];
        let runner = BatchRunner::with_threads(board.clone(), NonZeroUsize::new(3).unwrap());
        for engine in Engine::ALL {
            let batched = runner.run_configs_engine(&program, &configs, engine);
            for (i, config) in configs.iter().enumerate() {
                let solo = board.run_with_engine(&program, config, engine);
                match (&batched[i], &solo) {
                    (Ok(b), Ok(s)) => {
                        assert!(b.bits_eq(s), "{engine} slot {i} not bit-identical")
                    }
                    (Err(b), Err(s)) => {
                        assert_eq!(format!("{b:?}"), format!("{s:?}"), "{engine} slot {i}")
                    }
                    _ => panic!("{engine} slot {i}: batched and solo disagree on success"),
                }
            }
        }
    }

    #[test]
    fn map_is_order_stable_for_arbitrary_jobs() {
        let runner =
            BatchRunner::with_threads(Board::stm32vldiscovery(), NonZeroUsize::new(4).unwrap());
        let jobs: Vec<u64> = (0..100).collect();
        let out = runner.map(&jobs, |_, &j| {
            // Uneven spin to shuffle completion order.
            std::hint::black_box((0..(j % 7) * 1000).sum::<u64>());
            j * 2
        });
        assert_eq!(out, jobs.iter().map(|j| j * 2).collect::<Vec<_>>());
    }

    #[test]
    fn validate_against_flags_divergent_variants() {
        let board = Board::stm32vldiscovery();
        let baseline = compile("int main() { return 7; }");
        let variants = vec![
            compile("int main() { return 3 + 4; }"),
            compile("int main() { return 8; }"),
        ];
        let runner = BatchRunner::with_threads(board, NonZeroUsize::new(2).unwrap());
        let (base, validations) = runner.validate_against(&baseline, &variants).unwrap();
        assert_eq!(base.return_value, 7);
        assert!(validations[0].matches, "same value computed differently");
        assert!(validations[0].result.is_ok());
        assert!(!validations[1].matches, "different return value");
    }

    #[test]
    fn empty_batches_are_fine() {
        let runner = BatchRunner::new(Board::stm32vldiscovery());
        assert!(runner.run_programs(&[]).is_empty());
    }
}
