//! The power model, calibrated against Figure 1 of the paper.
//!
//! Figure 1 reports the average power of tight 16-instruction loops of a
//! single instruction kind executing from flash and from RAM on the
//! STM32F100RB.  The flash numbers cluster around 15–16 mW, the RAM numbers
//! around 8–10 mW, and the one exception is a loop running from RAM whose
//! loads read flash — it pays close to the flash power again.  The constants
//! below reproduce those relationships; they are a calibration of the
//! published figure, not a measurement.

use flashram_ir::Section;
use flashram_isa::InstClass;

/// Average power (milliwatts) drawn while executing each instruction class,
/// as a function of the memory the code executes from and, for memory
/// operations, the memory the data access targets.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Power while executing ALU-class instructions from flash.
    pub flash_alu_mw: f64,
    /// Power while executing loads from flash (data in either memory).
    pub flash_load_mw: f64,
    /// Power while executing stores from flash.
    pub flash_store_mw: f64,
    /// Power while executing `nop`s from flash.
    pub flash_nop_mw: f64,
    /// Power while executing branches/calls from flash.
    pub flash_branch_mw: f64,
    /// Power while executing ALU-class instructions from RAM.
    pub ram_alu_mw: f64,
    /// Power while executing loads from RAM when the data is also in RAM.
    pub ram_load_mw: f64,
    /// Power while executing loads from RAM when the data is in flash
    /// (the expensive "flash load" bar of Figure 1).
    pub ram_load_flash_data_mw: f64,
    /// Power while executing stores from RAM.
    pub ram_store_mw: f64,
    /// Power while executing `nop`s from RAM.
    pub ram_nop_mw: f64,
    /// Power while executing branches/calls from RAM.
    pub ram_branch_mw: f64,
    /// Quiescent power of the sleep state used by the periodic-sensing case
    /// study (Section 7 of the paper measures 3.5 mW).
    pub sleep_mw: f64,
}

impl PowerModel {
    /// The calibration used throughout the reproduction (see module docs).
    pub fn stm32f100() -> PowerModel {
        PowerModel {
            flash_alu_mw: 15.2,
            flash_load_mw: 16.0,
            flash_store_mw: 15.6,
            flash_nop_mw: 14.6,
            flash_branch_mw: 15.0,
            ram_alu_mw: 8.6,
            ram_load_mw: 9.6,
            ram_load_flash_data_mw: 15.0,
            ram_store_mw: 9.2,
            ram_nop_mw: 8.0,
            ram_branch_mw: 8.8,
            sleep_mw: 3.5,
        }
    }

    /// The average power drawn while an instruction of class `class`
    /// executes from `exec`, with `data` naming the memory touched by a
    /// load/store (if any).
    pub fn power_mw(&self, class: InstClass, exec: Section, data: Option<Section>) -> f64 {
        match exec {
            Section::Flash => match class {
                InstClass::Load => self.flash_load_mw,
                InstClass::Store | InstClass::Stack => self.flash_store_mw,
                InstClass::Nop => self.flash_nop_mw,
                InstClass::Branch | InstClass::Call => self.flash_branch_mw,
                InstClass::Mul | InstClass::Div | InstClass::Alu => self.flash_alu_mw,
            },
            Section::Ram => match class {
                InstClass::Load => match data {
                    Some(Section::Flash) => self.ram_load_flash_data_mw,
                    _ => self.ram_load_mw,
                },
                InstClass::Store | InstClass::Stack => self.ram_store_mw,
                InstClass::Nop => self.ram_nop_mw,
                InstClass::Branch | InstClass::Call => self.ram_branch_mw,
                InstClass::Mul | InstClass::Div | InstClass::Alu => self.ram_alu_mw,
            },
        }
    }

    /// The average-power coefficients the ILP cost model uses (`E_flash` and
    /// `E_ram` in the paper): a representative per-cycle power for code
    /// executing from each memory.
    pub fn model_coefficients(&self) -> (f64, f64) {
        let e_flash =
            (self.flash_alu_mw + self.flash_load_mw + self.flash_store_mw + self.flash_branch_mw)
                / 4.0;
        let e_ram =
            (self.ram_alu_mw + self.ram_load_mw + self.ram_store_mw + self.ram_branch_mw) / 4.0;
        (e_flash, e_ram)
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::stm32f100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_execution_is_cheaper_for_every_class() {
        let p = PowerModel::stm32f100();
        for class in [
            InstClass::Alu,
            InstClass::Mul,
            InstClass::Div,
            InstClass::Load,
            InstClass::Store,
            InstClass::Stack,
            InstClass::Nop,
            InstClass::Branch,
            InstClass::Call,
        ] {
            let flash = p.power_mw(class, Section::Flash, Some(Section::Ram));
            let ram = p.power_mw(class, Section::Ram, Some(Section::Ram));
            assert!(
                ram < flash,
                "{class:?}: ram {ram} should be below flash {flash}"
            );
        }
    }

    #[test]
    fn flash_data_load_from_ram_code_is_expensive() {
        let p = PowerModel::stm32f100();
        let cheap = p.power_mw(InstClass::Load, Section::Ram, Some(Section::Ram));
        let costly = p.power_mw(InstClass::Load, Section::Ram, Some(Section::Flash));
        assert!(
            costly > cheap + 3.0,
            "Figure 1's flash-load bar must stand out"
        );
    }

    #[test]
    fn model_coefficients_preserve_the_flash_ram_gap() {
        let (e_flash, e_ram) = PowerModel::stm32f100().model_coefficients();
        assert!(e_flash > e_ram);
        let ratio = e_flash / e_ram;
        assert!(
            ratio > 1.4 && ratio < 2.2,
            "ratio {ratio} out of the Figure 1 range"
        );
    }

    #[test]
    fn sleep_power_matches_section7() {
        assert!((PowerModel::stm32f100().sleep_mw - 3.5).abs() < 1e-9);
    }
}
