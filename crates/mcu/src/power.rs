//! The power model, calibrated against Figure 1 of the paper.
//!
//! Figure 1 reports the average power of tight 16-instruction loops of a
//! single instruction kind executing from flash and from RAM on the
//! STM32F100RB.  The flash numbers cluster around 15–16 mW, the RAM numbers
//! around 8–10 mW, and the one exception is a loop running from RAM whose
//! loads read flash — it pays close to the flash power again.  The constants
//! live on the device database's `stm32f100` entry (see `flashram-device`);
//! they are a calibration of the published figure, not a measurement.
//!
//! The model is fully per-class: every [`InstClass`] has its own flash and
//! RAM power, so device-database entries can describe parts whose multiply
//! or stack traffic draws differently from plain ALU ops.  The historical
//! STM32F100 calibration sets `mul = div = alu`, `stack = store` and
//! `call = branch`, which keeps every simulation bit-identical to the
//! original five-constant-per-memory model.

use flashram_device::DeviceDescriptor;
use flashram_ir::Section;
use flashram_isa::InstClass;

/// Average power (milliwatts) drawn while executing each instruction class,
/// as a function of the memory the code executes from and, for memory
/// operations, the memory the data access targets.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Power while executing ALU-class instructions from flash.
    pub flash_alu_mw: f64,
    /// Power while executing multiplies from flash.
    pub flash_mul_mw: f64,
    /// Power while executing divides from flash.
    pub flash_div_mw: f64,
    /// Power while executing loads from flash (data in either memory).
    pub flash_load_mw: f64,
    /// Power while executing stores from flash.
    pub flash_store_mw: f64,
    /// Power while executing push/pop stack traffic from flash.
    pub flash_stack_mw: f64,
    /// Power while executing `nop`s from flash.
    pub flash_nop_mw: f64,
    /// Power while executing branches from flash.
    pub flash_branch_mw: f64,
    /// Power while executing calls from flash.
    pub flash_call_mw: f64,
    /// Power while executing ALU-class instructions from RAM.
    pub ram_alu_mw: f64,
    /// Power while executing multiplies from RAM.
    pub ram_mul_mw: f64,
    /// Power while executing divides from RAM.
    pub ram_div_mw: f64,
    /// Power while executing loads from RAM when the data is also in RAM.
    pub ram_load_mw: f64,
    /// Power while executing loads from RAM when the data is in flash
    /// (the expensive "flash load" bar of Figure 1).
    pub ram_load_flash_data_mw: f64,
    /// Power while executing stores from RAM.
    pub ram_store_mw: f64,
    /// Power while executing push/pop stack traffic from RAM.
    pub ram_stack_mw: f64,
    /// Power while executing `nop`s from RAM.
    pub ram_nop_mw: f64,
    /// Power while executing branches from RAM.
    pub ram_branch_mw: f64,
    /// Power while executing calls from RAM.
    pub ram_call_mw: f64,
    /// Quiescent power of the sleep state used by the periodic-sensing case
    /// study (Section 7 of the paper measures 3.5 mW).
    pub sleep_mw: f64,
}

impl PowerModel {
    /// Build the power model described by a device-database entry.
    pub fn from_descriptor(desc: &DeviceDescriptor) -> PowerModel {
        let f = &desc.energy.flash;
        let r = &desc.energy.ram;
        PowerModel {
            flash_alu_mw: f.alu_mw,
            flash_mul_mw: f.mul_mw,
            flash_div_mw: f.div_mw,
            flash_load_mw: f.load_mw,
            flash_store_mw: f.store_mw,
            flash_stack_mw: f.stack_mw,
            flash_nop_mw: f.nop_mw,
            flash_branch_mw: f.branch_mw,
            flash_call_mw: f.call_mw,
            ram_alu_mw: r.alu_mw,
            ram_mul_mw: r.mul_mw,
            ram_div_mw: r.div_mw,
            ram_load_mw: r.load_mw,
            ram_load_flash_data_mw: desc.energy.ram_load_flash_data_mw,
            ram_store_mw: r.store_mw,
            ram_stack_mw: r.stack_mw,
            ram_nop_mw: r.nop_mw,
            ram_branch_mw: r.branch_mw,
            ram_call_mw: r.call_mw,
            sleep_mw: desc.energy.sleep_mw,
        }
    }

    /// The calibration used throughout the reproduction: the `stm32f100`
    /// entry of the device database (see module docs).
    pub fn stm32f100() -> PowerModel {
        PowerModel::from_descriptor(&flashram_device::STM32F100)
    }

    /// The average power drawn while an instruction of class `class`
    /// executes from `exec`, with `data` naming the memory touched by a
    /// load/store (if any).
    pub fn power_mw(&self, class: InstClass, exec: Section, data: Option<Section>) -> f64 {
        match exec {
            Section::Flash => match class {
                InstClass::Load => self.flash_load_mw,
                InstClass::Store => self.flash_store_mw,
                InstClass::Stack => self.flash_stack_mw,
                InstClass::Nop => self.flash_nop_mw,
                InstClass::Branch => self.flash_branch_mw,
                InstClass::Call => self.flash_call_mw,
                InstClass::Mul => self.flash_mul_mw,
                InstClass::Div => self.flash_div_mw,
                InstClass::Alu => self.flash_alu_mw,
            },
            Section::Ram => match class {
                InstClass::Load => match data {
                    Some(Section::Flash) => self.ram_load_flash_data_mw,
                    _ => self.ram_load_mw,
                },
                InstClass::Store => self.ram_store_mw,
                InstClass::Stack => self.ram_stack_mw,
                InstClass::Nop => self.ram_nop_mw,
                InstClass::Branch => self.ram_branch_mw,
                InstClass::Call => self.ram_call_mw,
                InstClass::Mul => self.ram_mul_mw,
                InstClass::Div => self.ram_div_mw,
                InstClass::Alu => self.ram_alu_mw,
            },
        }
    }

    /// The average-power coefficients the ILP cost model uses (`E_flash` and
    /// `E_ram` in the paper): a representative per-cycle power for code
    /// executing from each memory.
    pub fn model_coefficients(&self) -> (f64, f64) {
        let e_flash =
            (self.flash_alu_mw + self.flash_load_mw + self.flash_store_mw + self.flash_branch_mw)
                / 4.0;
        let e_ram =
            (self.ram_alu_mw + self.ram_load_mw + self.ram_store_mw + self.ram_branch_mw) / 4.0;
        (e_flash, e_ram)
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::stm32f100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_execution_is_cheaper_for_every_class() {
        let p = PowerModel::stm32f100();
        for class in [
            InstClass::Alu,
            InstClass::Mul,
            InstClass::Div,
            InstClass::Load,
            InstClass::Store,
            InstClass::Stack,
            InstClass::Nop,
            InstClass::Branch,
            InstClass::Call,
        ] {
            let flash = p.power_mw(class, Section::Flash, Some(Section::Ram));
            let ram = p.power_mw(class, Section::Ram, Some(Section::Ram));
            assert!(
                ram < flash,
                "{class:?}: ram {ram} should be below flash {flash}"
            );
        }
    }

    #[test]
    fn flash_data_load_from_ram_code_is_expensive() {
        let p = PowerModel::stm32f100();
        let cheap = p.power_mw(InstClass::Load, Section::Ram, Some(Section::Ram));
        let costly = p.power_mw(InstClass::Load, Section::Ram, Some(Section::Flash));
        assert!(
            costly > cheap + 3.0,
            "Figure 1's flash-load bar must stand out"
        );
    }

    #[test]
    fn model_coefficients_preserve_the_flash_ram_gap() {
        let (e_flash, e_ram) = PowerModel::stm32f100().model_coefficients();
        assert!(e_flash > e_ram);
        let ratio = e_flash / e_ram;
        assert!(
            ratio > 1.4 && ratio < 2.2,
            "ratio {ratio} out of the Figure 1 range"
        );
    }

    #[test]
    fn sleep_power_matches_section7() {
        assert!((PowerModel::stm32f100().sleep_mw - 3.5).abs() < 1e-9);
    }

    /// Regression pin: the `stm32f100` database entry must reproduce the
    /// exact constants that used to live here as literals, including the
    /// per-class aliasing (`mul = div = alu`, `stack = store`,
    /// `call = branch`) and the derived ILP coefficients.  Any drift would
    /// silently invalidate every golden in the repository.
    #[test]
    fn stm32f100_descriptor_pins_the_historical_constants() {
        let p = PowerModel::stm32f100();
        assert_eq!(p.flash_alu_mw, 15.2);
        assert_eq!(p.flash_mul_mw, 15.2);
        assert_eq!(p.flash_div_mw, 15.2);
        assert_eq!(p.flash_load_mw, 16.0);
        assert_eq!(p.flash_store_mw, 15.6);
        assert_eq!(p.flash_stack_mw, 15.6);
        assert_eq!(p.flash_nop_mw, 14.6);
        assert_eq!(p.flash_branch_mw, 15.0);
        assert_eq!(p.flash_call_mw, 15.0);
        assert_eq!(p.ram_alu_mw, 8.6);
        assert_eq!(p.ram_mul_mw, 8.6);
        assert_eq!(p.ram_div_mw, 8.6);
        assert_eq!(p.ram_load_mw, 9.6);
        assert_eq!(p.ram_load_flash_data_mw, 15.0);
        assert_eq!(p.ram_store_mw, 9.2);
        assert_eq!(p.ram_stack_mw, 9.2);
        assert_eq!(p.ram_nop_mw, 8.0);
        assert_eq!(p.ram_branch_mw, 8.8);
        assert_eq!(p.ram_call_mw, 8.8);
        assert_eq!(p.sleep_mw, 3.5);
        let (e_flash, e_ram) = p.model_coefficients();
        assert_eq!(e_flash, 15.45);
        assert_eq!(e_ram, 9.05);
    }
}
