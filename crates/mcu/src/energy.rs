//! Cycle and energy accounting.
//!
//! Two layers live here:
//!
//! * [`EnergyMeter`] — the per-run result type: total cycles split by the
//!   memory the code executed from, plus accumulated energy in joules;
//! * [`CycleCounters`] — the interpreter-facing accumulator.  The hot loop
//!   only bumps integer counters bucketed by (executing memory, instruction
//!   class, data memory); the floating-point energy math runs once per
//!   bucket when the run finishes, not once per instruction.  Because the
//!   fold visits the buckets in a fixed order, two runs of the same program
//!   produce bit-identical energy numbers — which is what lets the batched
//!   runner promise results identical to sequential execution.

use flashram_ir::Section;
use flashram_isa::{InstClass, TimingModel};

use crate::power::PowerModel;

/// Accumulates cycles and energy over a run, split by the memory the code
/// executed from.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyMeter {
    /// Total cycles executed.
    pub cycles: u64,
    /// Cycles spent executing from flash.
    pub flash_cycles: u64,
    /// Cycles spent executing from RAM.
    pub ram_cycles: u64,
    /// Total energy in joules.
    pub energy_j: f64,
}

impl EnergyMeter {
    /// A fresh meter.
    pub fn new() -> EnergyMeter {
        EnergyMeter::default()
    }

    /// Record `cycles` cycles at `power_mw` milliwatts, executed from `exec`.
    pub fn add(&mut self, cycles: u64, power_mw: f64, exec: Section, timing: &TimingModel) {
        self.cycles += cycles;
        match exec {
            Section::Flash => self.flash_cycles += cycles,
            Section::Ram => self.ram_cycles += cycles,
        }
        self.energy_j += power_mw * 1e-3 * timing.cycles_to_seconds(cycles);
    }

    /// Total energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.energy_j * 1e3
    }

    /// Elapsed time in seconds for the recorded cycles.
    pub fn time_s(&self, timing: &TimingModel) -> f64 {
        timing.cycles_to_seconds(self.cycles)
    }

    /// Average power in milliwatts over the recorded time.
    pub fn avg_power_mw(&self, timing: &TimingModel) -> f64 {
        let t = self.time_s(timing);
        if t == 0.0 {
            0.0
        } else {
            self.energy_j * 1e3 / t
        }
    }
}

/// Number of [`InstClass`] variants (the class axis of the counter cube),
/// derived from the last arm of `class_index` so it cannot desync from the
/// enum: adding a variant forces a new arm, which moves the count with it.
const NUM_CLASSES: usize = class_index(InstClass::Branch) + 1;
/// Number of data-access kinds: no data access, flash data, RAM data.
const NUM_DATA_KINDS: usize = 3;
/// Number of executing memories: flash, RAM.
const NUM_EXEC: usize = 2;

#[inline]
const fn class_index(class: InstClass) -> usize {
    match class {
        InstClass::Alu => 0,
        InstClass::Mul => 1,
        InstClass::Div => 2,
        InstClass::Load => 3,
        InstClass::Store => 4,
        InstClass::Stack => 5,
        InstClass::Nop => 6,
        InstClass::Call => 7,
        InstClass::Branch => 8,
    }
}

#[inline]
fn class_of(index: usize) -> InstClass {
    match index {
        0 => InstClass::Alu,
        1 => InstClass::Mul,
        2 => InstClass::Div,
        3 => InstClass::Load,
        4 => InstClass::Store,
        5 => InstClass::Stack,
        6 => InstClass::Nop,
        7 => InstClass::Call,
        _ => InstClass::Branch,
    }
}

#[inline]
fn exec_index(exec: Section) -> usize {
    match exec {
        Section::Flash => 0,
        Section::Ram => 1,
    }
}

#[inline]
fn data_index(data: Option<Section>) -> usize {
    match data {
        None => 0,
        Some(Section::Flash) => 1,
        Some(Section::Ram) => 2,
    }
}

/// Total number of buckets in the `(exec × class × data)` cube.
const NUM_BUCKETS: usize = NUM_EXEC * NUM_CLASSES * NUM_DATA_KINDS;

/// Flat integer cycle accumulators for the interpreter hot loop.
///
/// Every instruction the CPU retires lands in one bucket of a small
/// `(executing memory × instruction class × data memory)` cube; the power
/// model assigns one average power per bucket, so the expensive per-cycle
/// float accounting of a naive meter collapses into one multiply per
/// *bucket* at the end of the run (see [`CycleCounters::finish`]).
///
/// The cube is stored flat, with the data axis innermost, so the decoded
/// execution engine (`crate::decode`) can precompute a bucket index per
/// operation at decode time ([`CycleCounters::flat_index`]) and charge it
/// with a single array add ([`CycleCounters::add_flat`]) — for memory
/// operations, whose data section is only known at run time, the
/// decode-time index covers `(class, exec)` and the dynamic section is
/// added as an offset ([`CycleCounters::data_offset`]).
#[derive(Debug, Clone)]
pub struct CycleCounters {
    buckets: [u64; NUM_BUCKETS],
    total: u64,
}

impl Default for CycleCounters {
    fn default() -> Self {
        CycleCounters::new()
    }
}

impl CycleCounters {
    /// Fresh, all-zero counters.
    pub fn new() -> CycleCounters {
        CycleCounters {
            buckets: [0; NUM_BUCKETS],
            total: 0,
        }
    }

    /// The flat index of the `(class, exec, data)` bucket, for decode-time
    /// precomputation.  The data axis is innermost: the index for a memory
    /// operation whose data section is unknown until run time is
    /// `flat_index(class, exec, None) + data_offset(section)`.
    #[inline]
    pub fn flat_index(class: InstClass, exec: Section, data: Option<Section>) -> u16 {
        ((exec_index(exec) * NUM_CLASSES + class_index(class)) * NUM_DATA_KINDS + data_index(data))
            as u16
    }

    /// The offset added to a `flat_index(class, exec, None)` base for a data
    /// access that hit `section`.
    #[inline]
    pub fn data_offset(section: Section) -> u16 {
        data_index(Some(section)) as u16
    }

    /// Charge `cycles` cycles to a bucket precomputed with
    /// [`CycleCounters::flat_index`].
    #[inline]
    pub fn add_flat(&mut self, bucket: u16, cycles: u64) {
        self.buckets[bucket as usize] += cycles;
        self.total += cycles;
    }

    /// Charge a bucket **without** updating the running total.
    ///
    /// For callers that maintain the total themselves in a register (the
    /// decoded engine's hot loop does: three dependent read-modify-writes
    /// of a memory-resident total per chunk would otherwise form the loop's
    /// critical path).  Crate-private because it can desynchronize
    /// [`CycleCounters::total_cycles`] from the buckets; pair with
    /// [`CycleCounters::set_total`] before the counters are read back.
    #[inline]
    pub(crate) fn add_bucket(&mut self, bucket: u16, cycles: u64) {
        self.buckets[bucket as usize] += cycles;
    }

    /// Set the running total, for callers that charged buckets through
    /// [`CycleCounters::add_bucket`].
    #[inline]
    pub(crate) fn set_total(&mut self, total: u64) {
        self.total = total;
    }

    /// Charge `cycles` cycles to the bucket for an instruction of `class`
    /// executing from `exec` whose data access (if any) hit `data`.
    #[inline]
    pub fn add(&mut self, class: InstClass, exec: Section, data: Option<Section>, cycles: u64) {
        self.add_flat(Self::flat_index(class, exec, data), cycles);
    }

    /// Total cycles charged so far (the interpreter's cycle-limit check
    /// reads this instead of a meter).
    #[inline]
    pub fn total_cycles(&self) -> u64 {
        self.total
    }

    /// Fold the counters into an [`EnergyMeter`] under a power calibration.
    ///
    /// Buckets are visited in a fixed order, so the result is deterministic
    /// for a given set of counters regardless of the order in which cycles
    /// were charged.
    pub fn finish(&self, power: &PowerModel, timing: &TimingModel) -> EnergyMeter {
        let mut meter = EnergyMeter::new();
        for (i, &cycles) in self.buckets.iter().enumerate() {
            if cycles == 0 {
                continue;
            }
            let exec = if i / (NUM_CLASSES * NUM_DATA_KINDS) == 0 {
                Section::Flash
            } else {
                Section::Ram
            };
            let class = class_of((i / NUM_DATA_KINDS) % NUM_CLASSES);
            let data = match i % NUM_DATA_KINDS {
                0 => None,
                1 => Some(Section::Flash),
                _ => Some(Section::Ram),
            };
            meter.add(cycles, power.power_mw(class, exec, data), exec, timing);
        }
        meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashram_isa::CORTEX_M3_TIMING;

    #[test]
    fn accounting_adds_up() {
        let mut m = EnergyMeter::new();
        let t = CORTEX_M3_TIMING;
        // 24 million cycles at 12 mW = 1 second at 12 mW = 12 mJ.
        m.add(12_000_000, 12.0, Section::Flash, &t);
        m.add(12_000_000, 12.0, Section::Ram, &t);
        assert_eq!(m.cycles, 24_000_000);
        assert_eq!(m.flash_cycles, 12_000_000);
        assert_eq!(m.ram_cycles, 12_000_000);
        assert!((m.time_s(&t) - 1.0).abs() < 1e-9);
        assert!((m.energy_mj() - 12.0).abs() < 1e-6);
        assert!((m.avg_power_mw(&t) - 12.0).abs() < 1e-6);
    }

    #[test]
    fn empty_meter_reports_zero_power() {
        let m = EnergyMeter::new();
        assert_eq!(m.avg_power_mw(&CORTEX_M3_TIMING), 0.0);
        assert_eq!(m.energy_mj(), 0.0);
    }

    #[test]
    fn every_instruction_class_has_a_distinct_in_range_bucket() {
        let all = [
            InstClass::Alu,
            InstClass::Mul,
            InstClass::Div,
            InstClass::Load,
            InstClass::Store,
            InstClass::Stack,
            InstClass::Nop,
            InstClass::Call,
            InstClass::Branch,
        ];
        let mut seen = [false; NUM_CLASSES];
        for class in all {
            let i = class_index(class);
            assert!(i < NUM_CLASSES, "{class:?} indexes out of the cube");
            assert!(!seen[i], "{class:?} shares a bucket");
            seen[i] = true;
            assert_eq!(class_of(i), class, "class_of must invert class_index");
        }
        assert!(seen.iter().all(|&s| s), "every bucket must be claimed");
    }

    #[test]
    fn counters_fold_to_the_same_meter_as_incremental_adds() {
        let t = CORTEX_M3_TIMING;
        let p = PowerModel::stm32f100();
        let charges = [
            (InstClass::Alu, Section::Flash, None, 3u64),
            (InstClass::Load, Section::Ram, Some(Section::Flash), 2),
            (InstClass::Load, Section::Ram, Some(Section::Ram), 5),
            (InstClass::Branch, Section::Flash, None, 7),
            (InstClass::Alu, Section::Flash, None, 4),
        ];
        let mut counters = CycleCounters::new();
        for (class, exec, data, cycles) in charges {
            counters.add(class, exec, data, cycles);
        }
        assert_eq!(counters.total_cycles(), 21);
        let folded = counters.finish(&p, &t);
        assert_eq!(folded.cycles, 21);
        assert_eq!(folded.flash_cycles, 14);
        assert_eq!(folded.ram_cycles, 7);
        // The folded energy matches a per-charge meter to float tolerance.
        let mut meter = EnergyMeter::new();
        for (class, exec, data, cycles) in charges {
            meter.add(cycles, p.power_mw(class, exec, data), exec, &t);
        }
        assert!((folded.energy_j - meter.energy_j).abs() < 1e-15);
        // Folding twice is bit-identical (fixed bucket order).
        assert_eq!(folded, counters.finish(&p, &t));
    }

    #[test]
    fn flat_indices_are_unique_and_data_axis_is_innermost() {
        let all_classes = [
            InstClass::Alu,
            InstClass::Mul,
            InstClass::Div,
            InstClass::Load,
            InstClass::Store,
            InstClass::Stack,
            InstClass::Nop,
            InstClass::Call,
            InstClass::Branch,
        ];
        let mut seen = std::collections::BTreeSet::new();
        for class in all_classes {
            for exec in [Section::Flash, Section::Ram] {
                for data in [None, Some(Section::Flash), Some(Section::Ram)] {
                    let flat = CycleCounters::flat_index(class, exec, data);
                    assert!((flat as usize) < NUM_BUCKETS);
                    assert!(seen.insert(flat), "{class:?}/{exec:?}/{data:?} collides");
                    // The decode-time base + runtime data offset must land in
                    // the same bucket as the direct three-axis lookup.
                    if let Some(section) = data {
                        assert_eq!(
                            flat,
                            CycleCounters::flat_index(class, exec, None)
                                + CycleCounters::data_offset(section)
                        );
                    }
                }
            }
        }
        assert_eq!(seen.len(), NUM_BUCKETS);
    }

    #[test]
    fn add_flat_matches_add() {
        let t = CORTEX_M3_TIMING;
        let p = PowerModel::stm32f100();
        let mut direct = CycleCounters::new();
        direct.add(InstClass::Load, Section::Ram, Some(Section::Ram), 7);
        let mut flat = CycleCounters::new();
        let base = CycleCounters::flat_index(InstClass::Load, Section::Ram, None);
        flat.add_flat(base + CycleCounters::data_offset(Section::Ram), 7);
        assert_eq!(direct.total_cycles(), flat.total_cycles());
        assert_eq!(direct.finish(&p, &t), flat.finish(&p, &t));
    }

    #[test]
    fn mixed_power_average_is_weighted() {
        let mut m = EnergyMeter::new();
        let t = CORTEX_M3_TIMING;
        m.add(1_000_000, 16.0, Section::Flash, &t);
        m.add(3_000_000, 8.0, Section::Ram, &t);
        let avg = m.avg_power_mw(&t);
        assert!(
            (avg - 10.0).abs() < 1e-6,
            "weighted average should be 10 mW, got {avg}"
        );
    }
}
