//! Cycle and energy accounting.

use flashram_ir::Section;
use flashram_isa::TimingModel;

/// Accumulates cycles and energy over a run, split by the memory the code
/// executed from.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyMeter {
    /// Total cycles executed.
    pub cycles: u64,
    /// Cycles spent executing from flash.
    pub flash_cycles: u64,
    /// Cycles spent executing from RAM.
    pub ram_cycles: u64,
    /// Total energy in joules.
    pub energy_j: f64,
}

impl EnergyMeter {
    /// A fresh meter.
    pub fn new() -> EnergyMeter {
        EnergyMeter::default()
    }

    /// Record `cycles` cycles at `power_mw` milliwatts, executed from `exec`.
    pub fn add(&mut self, cycles: u64, power_mw: f64, exec: Section, timing: &TimingModel) {
        self.cycles += cycles;
        match exec {
            Section::Flash => self.flash_cycles += cycles,
            Section::Ram => self.ram_cycles += cycles,
        }
        self.energy_j += power_mw * 1e-3 * timing.cycles_to_seconds(cycles);
    }

    /// Total energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.energy_j * 1e3
    }

    /// Elapsed time in seconds for the recorded cycles.
    pub fn time_s(&self, timing: &TimingModel) -> f64 {
        timing.cycles_to_seconds(self.cycles)
    }

    /// Average power in milliwatts over the recorded time.
    pub fn avg_power_mw(&self, timing: &TimingModel) -> f64 {
        let t = self.time_s(timing);
        if t == 0.0 {
            0.0
        } else {
            self.energy_j * 1e3 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashram_isa::CORTEX_M3_TIMING;

    #[test]
    fn accounting_adds_up() {
        let mut m = EnergyMeter::new();
        let t = CORTEX_M3_TIMING;
        // 24 million cycles at 12 mW = 1 second at 12 mW = 12 mJ.
        m.add(12_000_000, 12.0, Section::Flash, &t);
        m.add(12_000_000, 12.0, Section::Ram, &t);
        assert_eq!(m.cycles, 24_000_000);
        assert_eq!(m.flash_cycles, 12_000_000);
        assert_eq!(m.ram_cycles, 12_000_000);
        assert!((m.time_s(&t) - 1.0).abs() < 1e-9);
        assert!((m.energy_mj() - 12.0).abs() < 1e-6);
        assert!((m.avg_power_mw(&t) - 12.0).abs() < 1e-6);
    }

    #[test]
    fn empty_meter_reports_zero_power() {
        let m = EnergyMeter::new();
        assert_eq!(m.avg_power_mw(&CORTEX_M3_TIMING), 0.0);
        assert_eq!(m.energy_mj(), 0.0);
    }

    #[test]
    fn mixed_power_average_is_weighted() {
        let mut m = EnergyMeter::new();
        let t = CORTEX_M3_TIMING;
        m.add(1_000_000, 16.0, Section::Flash, &t);
        m.add(3_000_000, 8.0, Section::Ram, &t);
        let avg = m.avg_power_mw(&t);
        assert!(
            (avg - 10.0).abs() < 1e-6,
            "weighted average should be 10 mW, got {avg}"
        );
    }
}
