//! Cycle and energy accounting.
//!
//! Two layers live here:
//!
//! * [`EnergyMeter`] — the per-run result type: total cycles split by the
//!   memory the code executed from, plus accumulated energy in joules;
//! * [`CycleCounters`] — the interpreter-facing accumulator.  The hot loop
//!   only bumps integer counters bucketed by (executing memory, instruction
//!   class, data memory); the floating-point energy math runs once per
//!   bucket when the run finishes, not once per instruction.  Because the
//!   fold visits the buckets in a fixed order, two runs of the same program
//!   produce bit-identical energy numbers — which is what lets the batched
//!   runner promise results identical to sequential execution.

use flashram_ir::Section;
use flashram_isa::{InstClass, TimingModel};

use crate::power::PowerModel;

/// Accumulates cycles and energy over a run, split by the memory the code
/// executed from.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyMeter {
    /// Total cycles executed.
    pub cycles: u64,
    /// Cycles spent executing from flash.
    pub flash_cycles: u64,
    /// Cycles spent executing from RAM.
    pub ram_cycles: u64,
    /// Total energy in joules.
    pub energy_j: f64,
}

impl EnergyMeter {
    /// A fresh meter.
    pub fn new() -> EnergyMeter {
        EnergyMeter::default()
    }

    /// Record `cycles` cycles at `power_mw` milliwatts, executed from `exec`.
    pub fn add(&mut self, cycles: u64, power_mw: f64, exec: Section, timing: &TimingModel) {
        self.cycles += cycles;
        match exec {
            Section::Flash => self.flash_cycles += cycles,
            Section::Ram => self.ram_cycles += cycles,
        }
        self.energy_j += power_mw * 1e-3 * timing.cycles_to_seconds(cycles);
    }

    /// Total energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.energy_j * 1e3
    }

    /// Elapsed time in seconds for the recorded cycles.
    pub fn time_s(&self, timing: &TimingModel) -> f64 {
        timing.cycles_to_seconds(self.cycles)
    }

    /// Average power in milliwatts over the recorded time.
    pub fn avg_power_mw(&self, timing: &TimingModel) -> f64 {
        let t = self.time_s(timing);
        if t == 0.0 {
            0.0
        } else {
            self.energy_j * 1e3 / t
        }
    }
}

/// Number of [`InstClass`] variants (the class axis of the counter cube),
/// derived from the last arm of `class_index` so it cannot desync from the
/// enum: adding a variant forces a new arm, which moves the count with it.
const NUM_CLASSES: usize = class_index(InstClass::Branch) + 1;
/// Number of data-access kinds: no data access, flash data, RAM data.
const NUM_DATA_KINDS: usize = 3;
/// Number of executing memories: flash, RAM.
const NUM_EXEC: usize = 2;

#[inline]
const fn class_index(class: InstClass) -> usize {
    match class {
        InstClass::Alu => 0,
        InstClass::Mul => 1,
        InstClass::Div => 2,
        InstClass::Load => 3,
        InstClass::Store => 4,
        InstClass::Stack => 5,
        InstClass::Nop => 6,
        InstClass::Call => 7,
        InstClass::Branch => 8,
    }
}

#[inline]
fn class_of(index: usize) -> InstClass {
    match index {
        0 => InstClass::Alu,
        1 => InstClass::Mul,
        2 => InstClass::Div,
        3 => InstClass::Load,
        4 => InstClass::Store,
        5 => InstClass::Stack,
        6 => InstClass::Nop,
        7 => InstClass::Call,
        _ => InstClass::Branch,
    }
}

#[inline]
fn exec_index(exec: Section) -> usize {
    match exec {
        Section::Flash => 0,
        Section::Ram => 1,
    }
}

#[inline]
fn data_index(data: Option<Section>) -> usize {
    match data {
        None => 0,
        Some(Section::Flash) => 1,
        Some(Section::Ram) => 2,
    }
}

/// Flat integer cycle accumulators for the interpreter hot loop.
///
/// Every instruction the CPU retires lands in one bucket of a small
/// `(executing memory × instruction class × data memory)` cube; the power
/// model assigns one average power per bucket, so the expensive per-cycle
/// float accounting of a naive meter collapses into one multiply per
/// *bucket* at the end of the run (see [`CycleCounters::finish`]).
#[derive(Debug, Clone)]
pub struct CycleCounters {
    buckets: [[[u64; NUM_DATA_KINDS]; NUM_CLASSES]; NUM_EXEC],
    total: u64,
}

impl Default for CycleCounters {
    fn default() -> Self {
        CycleCounters::new()
    }
}

impl CycleCounters {
    /// Fresh, all-zero counters.
    pub fn new() -> CycleCounters {
        CycleCounters {
            buckets: [[[0; NUM_DATA_KINDS]; NUM_CLASSES]; NUM_EXEC],
            total: 0,
        }
    }

    /// Charge `cycles` cycles to the bucket for an instruction of `class`
    /// executing from `exec` whose data access (if any) hit `data`.
    #[inline]
    pub fn add(&mut self, class: InstClass, exec: Section, data: Option<Section>, cycles: u64) {
        self.buckets[exec_index(exec)][class_index(class)][data_index(data)] += cycles;
        self.total += cycles;
    }

    /// Total cycles charged so far (the interpreter's cycle-limit check
    /// reads this instead of a meter).
    #[inline]
    pub fn total_cycles(&self) -> u64 {
        self.total
    }

    /// Fold the counters into an [`EnergyMeter`] under a power calibration.
    ///
    /// Buckets are visited in a fixed order, so the result is deterministic
    /// for a given set of counters regardless of the order in which cycles
    /// were charged.
    pub fn finish(&self, power: &PowerModel, timing: &TimingModel) -> EnergyMeter {
        let mut meter = EnergyMeter::new();
        for (e, per_exec) in self.buckets.iter().enumerate() {
            let exec = if e == 0 { Section::Flash } else { Section::Ram };
            for (c, per_class) in per_exec.iter().enumerate() {
                let class = class_of(c);
                for (d, &cycles) in per_class.iter().enumerate() {
                    if cycles == 0 {
                        continue;
                    }
                    let data = match d {
                        0 => None,
                        1 => Some(Section::Flash),
                        _ => Some(Section::Ram),
                    };
                    meter.add(cycles, power.power_mw(class, exec, data), exec, timing);
                }
            }
        }
        meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashram_isa::CORTEX_M3_TIMING;

    #[test]
    fn accounting_adds_up() {
        let mut m = EnergyMeter::new();
        let t = CORTEX_M3_TIMING;
        // 24 million cycles at 12 mW = 1 second at 12 mW = 12 mJ.
        m.add(12_000_000, 12.0, Section::Flash, &t);
        m.add(12_000_000, 12.0, Section::Ram, &t);
        assert_eq!(m.cycles, 24_000_000);
        assert_eq!(m.flash_cycles, 12_000_000);
        assert_eq!(m.ram_cycles, 12_000_000);
        assert!((m.time_s(&t) - 1.0).abs() < 1e-9);
        assert!((m.energy_mj() - 12.0).abs() < 1e-6);
        assert!((m.avg_power_mw(&t) - 12.0).abs() < 1e-6);
    }

    #[test]
    fn empty_meter_reports_zero_power() {
        let m = EnergyMeter::new();
        assert_eq!(m.avg_power_mw(&CORTEX_M3_TIMING), 0.0);
        assert_eq!(m.energy_mj(), 0.0);
    }

    #[test]
    fn every_instruction_class_has_a_distinct_in_range_bucket() {
        let all = [
            InstClass::Alu,
            InstClass::Mul,
            InstClass::Div,
            InstClass::Load,
            InstClass::Store,
            InstClass::Stack,
            InstClass::Nop,
            InstClass::Call,
            InstClass::Branch,
        ];
        let mut seen = [false; NUM_CLASSES];
        for class in all {
            let i = class_index(class);
            assert!(i < NUM_CLASSES, "{class:?} indexes out of the cube");
            assert!(!seen[i], "{class:?} shares a bucket");
            seen[i] = true;
            assert_eq!(class_of(i), class, "class_of must invert class_index");
        }
        assert!(seen.iter().all(|&s| s), "every bucket must be claimed");
    }

    #[test]
    fn counters_fold_to_the_same_meter_as_incremental_adds() {
        let t = CORTEX_M3_TIMING;
        let p = PowerModel::stm32f100();
        let charges = [
            (InstClass::Alu, Section::Flash, None, 3u64),
            (InstClass::Load, Section::Ram, Some(Section::Flash), 2),
            (InstClass::Load, Section::Ram, Some(Section::Ram), 5),
            (InstClass::Branch, Section::Flash, None, 7),
            (InstClass::Alu, Section::Flash, None, 4),
        ];
        let mut counters = CycleCounters::new();
        for (class, exec, data, cycles) in charges {
            counters.add(class, exec, data, cycles);
        }
        assert_eq!(counters.total_cycles(), 21);
        let folded = counters.finish(&p, &t);
        assert_eq!(folded.cycles, 21);
        assert_eq!(folded.flash_cycles, 14);
        assert_eq!(folded.ram_cycles, 7);
        // The folded energy matches a per-charge meter to float tolerance.
        let mut meter = EnergyMeter::new();
        for (class, exec, data, cycles) in charges {
            meter.add(cycles, p.power_mw(class, exec, data), exec, &t);
        }
        assert!((folded.energy_j - meter.energy_j).abs() < 1e-15);
        // Folding twice is bit-identical (fixed bucket order).
        assert_eq!(folded, counters.finish(&p, &t));
    }

    #[test]
    fn mixed_power_average_is_weighted() {
        let mut m = EnergyMeter::new();
        let t = CORTEX_M3_TIMING;
        m.add(1_000_000, 16.0, Section::Flash, &t);
        m.add(3_000_000, 8.0, Section::Ram, &t);
        let avg = m.avg_power_mw(&t);
        assert!(
            (avg - 10.0).abs() < 1e-6,
            "weighted average should be 10 mW, got {avg}"
        );
    }
}
