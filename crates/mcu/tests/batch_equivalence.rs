//! Property tests for the batched runner: over arbitrary, shuffled sets of
//! generated programs, `BatchRunner` must return exactly the `RunResult`s
//! (checksum, cycles, energy bits, profile, layout) that one-by-one
//! `Board::run` calls produce, in the same order — at any worker count.

use std::num::NonZeroUsize;

use flashram_mcu::{BatchRunner, Board, RunConfig, RunError};
use flashram_minicc::{compile_program, OptLevel, SourceUnit};
use proptest::prelude::*;

/// A compact program descriptor the strategy can generate: one of a few
/// shapes (arithmetic loop, array walk, call-heavy recursion) with its
/// parameters.  Shapes differ wildly in run time, which is exactly what
/// stresses order-stable collection.
#[derive(Debug, Clone, Copy)]
struct Job {
    shape: u8,
    param: i32,
    iters: u32,
}

fn job() -> impl Strategy<Value = Job> {
    (0u8..3, -40i32..40, 1u32..400).prop_map(|(shape, param, iters)| Job {
        shape,
        param,
        iters,
    })
}

fn source(job: Job) -> String {
    match job.shape {
        0 => format!(
            "int main() {{ int s = {p}; for (int i = 0; i < {n}; i++) {{ s += i * 3 - (s >> 2); }} return s; }}",
            p = job.param,
            n = job.iters,
        ),
        1 => format!(
            "
            int table[16];
            int main() {{
                for (int i = 0; i < 16; i++) {{ table[i] = i * {p}; }}
                int s = 0;
                for (int i = 0; i < {n}; i++) {{ s += table[i % 16]; }}
                return s;
            }}
            ",
            p = job.param,
            n = job.iters % 64 + 1,
        ),
        _ => format!(
            "
            int f(int n) {{ if (n <= 1) return 1; return f(n - 1) + n * {p}; }}
            int main() {{ return f({n}); }}
            ",
            p = job.param,
            n = job.iters % 20 + 1,
        ),
    }
}

/// Deterministic Fisher-Yates driven by a generated seed, so the "shuffled
/// program set" of the property is reproducible.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Batched results are bit-identical to sequential ones for shuffled
    /// program sets at several worker counts.
    #[test]
    fn batched_matches_sequential_on_shuffled_sets(
        jobs in prop::collection::vec(job(), 2..10),
        seed in any::<u64>(),
        threads in 1usize..5,
    ) {
        let mut jobs = jobs;
        shuffle(&mut jobs, seed);
        let programs: Vec<_> = jobs
            .iter()
            .map(|&j| {
                compile_program(&[SourceUnit::application(&source(j))], OptLevel::O1)
                    .expect("generated program compiles")
            })
            .collect();

        let board = Board::stm32vldiscovery();
        let sequential: Vec<_> = programs.iter().map(|p| board.run(p)).collect();
        let runner = BatchRunner::with_threads(
            board,
            NonZeroUsize::new(threads).expect("threads >= 1"),
        );
        let batched = runner.run_programs(&programs);

        prop_assert_eq!(batched.len(), sequential.len());
        for (i, (b, s)) in batched.iter().zip(&sequential).enumerate() {
            let b = b.as_ref().expect("batched run succeeds");
            let s = s.as_ref().expect("sequential run succeeds");
            prop_assert!(b.bits_eq(s), "job {} not bit-identical", i);
        }
    }

    /// Cycle-limited jobs fail identically in batched and sequential runs,
    /// and the error reports how far execution got.
    #[test]
    fn cycle_limited_jobs_fail_identically(
        budget in 100u64..5_000,
        threads in 1usize..4,
    ) {
        let runaway = compile_program(
            &[SourceUnit::application("int main() { while (1) { } return 0; }")],
            OptLevel::O1,
        )
        .expect("compiles");
        let quick = compile_program(
            &[SourceUnit::application("int main() { return 9; }")],
            OptLevel::O1,
        )
        .expect("compiles");
        let programs = vec![quick, runaway];
        let config = RunConfig { max_cycles: budget };

        let board = Board::stm32vldiscovery();
        let sequential: Vec<_> = programs
            .iter()
            .map(|p| board.run_with_config(p, &config))
            .collect();
        let runner = BatchRunner::with_threads(
            board,
            NonZeroUsize::new(threads).expect("threads >= 1"),
        );
        let batched = runner.run_programs_with_config(&programs, &config);

        prop_assert_eq!(batched[0].as_ref().unwrap().return_value, 9);
        prop_assert_eq!(
            batched[1].as_ref().err(),
            sequential[1].as_ref().err(),
            "error variants must match"
        );
        match &batched[1] {
            Err(RunError::CycleLimit { limit, executed }) => {
                prop_assert_eq!(*limit, budget);
                prop_assert!(
                    *executed > budget,
                    "executed {} must pass the {} budget",
                    executed,
                    budget
                );
            }
            other => prop_assert!(false, "expected CycleLimit, got {:?}", other),
        }
    }
}
