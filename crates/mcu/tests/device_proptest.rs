//! Differential property tests across the device database: for every
//! registered device — and for randomly generated `DeviceDescriptor`s with
//! arbitrary wait states, prefetch settings and contention penalties —
//! every execution engine (decoded, threaded dispatch, tiered superblock)
//! must stay observably bit-identical to the IR-walking reference
//! interpreter, with code split arbitrarily between flash and RAM.

use flashram_device::{
    CodeMemoryKind, DeviceDescriptor, DeviceMemoryMap, MemoryRegion, OperatingPoint, RamContention,
    DEVICE_DB, STM32F100,
};
use flashram_ir::Section;
use flashram_isa::FlashTiming;
use flashram_mcu::{Board, Engine, RunConfig, RunError, RunResult};
use flashram_minicc::{compile_program, OptLevel, SourceUnit};
use proptest::prelude::*;

const SRC: &str = "
    int table[12];
    const int key[4] = {3, 5, 7, 11};
    int mix(int x) { return (x * 31) ^ (x >> 2); }
    int main() {
        for (int i = 0; i < 12; i++) { table[i] = mix(i) + key[i % 4]; }
        int s = 0;
        for (int i = 0; i < 60; i++) {
            if (i % 3 == 0) { s += table[i % 12]; } else { s -= mix(i) / (i % 5 + 1); }
        }
        return s;
    }
";

fn assert_same(
    engine: &Result<RunResult, RunError>,
    reference: &Result<RunResult, RunError>,
    what: &str,
) {
    match (engine, reference) {
        (Ok(d), Ok(r)) => assert!(
            d.bits_eq(r),
            "{what}: results diverge\nengine: {d:?}\nreference: {r:?}"
        ),
        (Err(d), Err(r)) => assert_eq!(d, r, "{what}: errors diverge"),
        (d, r) => panic!("{what}: engine {d:?} vs reference {r:?}"),
    }
}

/// Run on the reference interpreter and on every fast engine, asserting
/// each agrees to the bit — the generated wait-state/prefetch charges must
/// bake into threaded handlers and superblock static charges identically.
fn run_both(board: &Board, program: &flashram_ir::MachineProgram, config: &RunConfig, what: &str) {
    let reference = board.run_reference_with_config(program, config);
    for engine in [Engine::Decoded, Engine::Threaded, Engine::Superblock] {
        let result = board.run_with_engine(program, config, engine);
        assert_same(&result, &reference, &format!("{what} [{engine}]"));
    }
}

/// Relocate the blocks selected by `mask` (over all application functions)
/// into RAM, exercising both memories under the device's timing model.
fn place_by_mask(program: &flashram_ir::MachineProgram, mask: u32) -> flashram_ir::MachineProgram {
    let mut placed = program.clone();
    let mut bit = 0u32;
    for f in &mut placed.functions {
        for b in &mut f.blocks {
            if mask & (1 << (bit % 32)) != 0 {
                b.section = Section::Ram;
            }
            bit += 1;
        }
    }
    placed
}

/// Leak a generated descriptor: tests only, a handful of bytes per case.
fn generated_descriptor(
    wait_states: u64,
    prefetch_enabled: bool,
    clock_hz: f64,
    load_cycles: u64,
    store_cycles: u64,
) -> &'static DeviceDescriptor {
    let ops = Box::leak(Box::new([OperatingPoint {
        name: "generated",
        clock_hz,
        vdd_mv: 3300,
        flash: FlashTiming {
            wait_states,
            prefetch_enabled,
        },
    }]));
    Box::leak(Box::new(DeviceDescriptor {
        key: "generated",
        name: "generated test part",
        core: "cortex-m3",
        memory: DeviceMemoryMap {
            code: MemoryRegion {
                base: 0x0800_0000,
                size: 64 * 1024,
            },
            code_kind: CodeMemoryKind::Flash,
            ram: MemoryRegion {
                base: 0x2000_0000,
                size: 16 * 1024,
            },
            stack_reserve: 1024,
        },
        ram_contention: RamContention {
            load_cycles,
            store_cycles,
        },
        operating_points: ops,
        default_operating_point: 0,
        energy: STM32F100.energy,
    }))
}

/// Every database entry runs the reference program identically on both
/// engines, with code split across both memories.
#[test]
fn database_devices_are_bit_identical_across_engines() {
    let program = compile_program(&[SourceUnit::application(SRC)], OptLevel::O2).unwrap();
    for desc in DEVICE_DB.all() {
        let board = Board::new(desc);
        for mask in [0u32, 0b1010_1010, u32::MAX] {
            let placed = place_by_mask(&program, mask);
            run_both(
                &board,
                &placed,
                &RunConfig::default(),
                &format!("{} mask {mask:#b}", desc.key),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random wait-state/prefetch/contention descriptors with random
    /// flash/RAM block splits: both engines agree to the bit.
    #[test]
    fn generated_devices_are_bit_identical_across_engines(
        wait_states in 0u64..4,
        prefetch in any::<bool>(),
        load_cycles in 0u64..3,
        store_cycles in 0u64..3,
        mask in any::<u32>(),
        level in prop_oneof![Just(OptLevel::O0), Just(OptLevel::O1), Just(OptLevel::O2)],
    ) {
        let desc = generated_descriptor(
            wait_states,
            prefetch,
            32_000_000.0,
            load_cycles,
            store_cycles,
        );
        let board = Board::new(desc);
        let program = compile_program(&[SourceUnit::application(SRC)], level).unwrap();
        let placed = place_by_mask(&program, mask);
        run_both(
            &board,
            &placed,
            &RunConfig::default(),
            &format!("ws={wait_states} prefetch={prefetch} mask={mask:#x} {level}"),
        );
    }

    /// Cycle budgets interact with wait-state charges: the `CycleLimit`
    /// errors (limit *and* executed cycles) must match exactly too.
    #[test]
    fn generated_devices_agree_under_cycle_limits(
        wait_states in 0u64..4,
        prefetch in any::<bool>(),
        mask in any::<u32>(),
        max_cycles in 0u64..8000,
    ) {
        let desc = generated_descriptor(wait_states, prefetch, 24_000_000.0, 1, 1);
        let board = Board::new(desc);
        let program = compile_program(&[SourceUnit::application(SRC)], OptLevel::O1).unwrap();
        let placed = place_by_mask(&program, mask);
        run_both(
            &board,
            &placed,
            &RunConfig { max_cycles },
            &format!("ws={wait_states} prefetch={prefetch} budget {max_cycles}"),
        );
    }
}

/// Wait states must actually cost cycles: the same program takes strictly
/// longer (and more energy) on a no-prefetch wait-state part than on the
/// zero-wait reference, and relocating everything to RAM erases the gap.
#[test]
fn wait_states_slow_flash_but_not_ram() {
    let program = compile_program(&[SourceUnit::application(SRC)], OptLevel::O2).unwrap();
    let zero_wait = Board::new(generated_descriptor(0, false, 24_000_000.0, 1, 1));
    let waity = Board::new(generated_descriptor(2, false, 24_000_000.0, 1, 1));

    let base_zero = zero_wait.run(&program).unwrap();
    let base_waity = waity.run(&program).unwrap();
    assert!(
        base_waity.cycles() > base_zero.cycles(),
        "flash execution must stall: {} vs {}",
        base_waity.cycles(),
        base_zero.cycles()
    );

    let all_ram = place_by_mask(&program, u32::MAX);
    let ram_zero = zero_wait.run(&all_ram).unwrap();
    let ram_waity = waity.run(&all_ram).unwrap();
    assert_eq!(
        ram_waity.cycles(),
        ram_zero.cycles(),
        "RAM execution never pays flash wait states"
    );

    // The prefetch buffer hides most of the penalty for sequential code.
    let prefetch = Board::new(generated_descriptor(2, true, 24_000_000.0, 1, 1));
    let base_prefetch = prefetch.run(&program).unwrap();
    assert!(base_prefetch.cycles() > base_zero.cycles());
    assert!(base_prefetch.cycles() < base_waity.cycles());
}
