//! Consistency tests for the board's energy accounting: the derived
//! quantities reported by a run (time, energy, average power) must agree
//! with each other and with the power-model bounds, for a variety of
//! programs and placements.

use flashram_ir::Section;
use flashram_mcu::{Board, PowerModel};
use flashram_minicc::{compile_program, OptLevel, SourceUnit};

fn compile(src: &str, level: OptLevel) -> flashram_ir::MachineProgram {
    compile_program(&[SourceUnit::application(src)], level).unwrap()
}

const PROGRAMS: [&str; 3] = [
    "int main() { int s = 1; for (int i = 0; i < 300; i++) { s += i * s; } return s; }",
    "
    int buf[40];
    int main() {
        for (int i = 0; i < 40; i++) { buf[i] = i * 13; }
        int acc = 0;
        for (int r = 0; r < 20; r++) { for (int i = 0; i < 40; i++) { acc += buf[i] >> (r & 3); } }
        return acc;
    }
    ",
    "
    int f(int x) { if (x % 3 == 0) { return x / 3; } return 2 * x + 1; }
    int main() {
        int n = 7;
        int steps = 0;
        for (int i = 0; i < 60; i++) {
            if (n != 1) { n = f(n); steps++; }
        }
        return steps + n;
    }
    ",
];

#[test]
fn energy_equals_average_power_times_time() {
    let board = Board::stm32vldiscovery();
    for (i, src) in PROGRAMS.iter().enumerate() {
        for level in [OptLevel::O0, OptLevel::O2] {
            let run = board.run(&compile(src, level)).unwrap();
            let product = run.avg_power_mw * run.time_s;
            assert!(
                (product - run.energy_mj).abs() <= 1e-9 * run.energy_mj.max(1e-12),
                "program {i} at {level}: {} mW x {} s != {} mJ",
                run.avg_power_mw,
                run.time_s,
                run.energy_mj
            );
        }
    }
}

#[test]
fn time_is_cycles_over_the_core_clock() {
    let board = Board::stm32vldiscovery();
    for src in PROGRAMS {
        let run = board.run(&compile(src, OptLevel::O1)).unwrap();
        let expected = run.cycles() as f64 / board.timing.clock_hz;
        assert!((run.time_s - expected).abs() <= 1e-12 + 1e-9 * expected);
    }
}

#[test]
fn average_power_stays_within_the_model_bounds() {
    let board = Board::stm32vldiscovery();
    let p = PowerModel::stm32f100();
    let max_mw = [
        p.flash_alu_mw,
        p.flash_load_mw,
        p.flash_store_mw,
        p.flash_nop_mw,
        p.flash_branch_mw,
    ]
    .into_iter()
    .fold(0.0f64, f64::max);
    let min_mw = [
        p.ram_alu_mw,
        p.ram_load_mw,
        p.ram_store_mw,
        p.ram_nop_mw,
        p.ram_branch_mw,
    ]
    .into_iter()
    .fold(f64::INFINITY, f64::min);
    for src in PROGRAMS {
        // All-in-flash baseline sits in the flash power band.
        let prog = compile(src, OptLevel::O2);
        let base = board.run(&prog).unwrap();
        assert!(base.avg_power_mw <= max_mw + 1e-9);
        assert!(base.avg_power_mw >= min_mw - 1e-9);

        // Moving all application code to RAM pulls the average power down,
        // but never below the cheapest RAM class.
        let mut in_ram = prog.clone();
        for f in &mut in_ram.functions {
            if !f.is_library {
                for b in &mut f.blocks {
                    b.section = Section::Ram;
                }
            }
        }
        let relocated = board.run(&in_ram).unwrap();
        assert_eq!(base.return_value, relocated.return_value);
        assert!(relocated.avg_power_mw < base.avg_power_mw);
        assert!(relocated.avg_power_mw >= min_mw - 1e-9);
    }
}

#[test]
fn cycle_counts_are_deterministic() {
    let board = Board::stm32vldiscovery();
    let prog = compile(PROGRAMS[1], OptLevel::O2);
    let a = board.run(&prog).unwrap();
    let b = board.run(&prog).unwrap();
    assert_eq!(a.cycles(), b.cycles());
    assert_eq!(a.return_value, b.return_value);
    assert!((a.energy_mj - b.energy_mj).abs() < 1e-15);
}

#[test]
fn profile_counts_are_consistent_with_cycle_counts() {
    let board = Board::stm32vldiscovery();
    for src in PROGRAMS {
        let prog = compile(src, OptLevel::O1);
        let run = board.run(&prog).unwrap();
        // Each executed block costs at least one cycle, so the total block
        // executions can never exceed the cycle count.
        assert!(run.profile.total_block_executions() <= run.cycles());
        // Every recorded block actually exists in the program.
        for (block, count) in run.profile.iter() {
            assert!(block.func.index() < prog.functions.len());
            assert!(block.block.index() < prog.functions[block.func.index()].blocks.len());
            assert!(count > 0);
        }
    }
}

#[test]
fn sleep_power_is_far_below_active_power() {
    let board = Board::stm32vldiscovery();
    let run = board.run(&compile(PROGRAMS[0], OptLevel::O2)).unwrap();
    assert!(PowerModel::stm32f100().sleep_mw * 2.0 < run.avg_power_mw);
}
