//! Differential testing of the compiler + simulator stack: randomly generated
//! mini-C programs must compute the same result at every optimization level.
//!
//! The flash/RAM placement evaluation depends on the claim that O0..Os all
//! implement the same semantics (the paper sweeps all five levels); these
//! tests fuzz that claim with randomly generated expressions, conditionals
//! and loops, using the unoptimized O0 build as the reference.

use flashram_mcu::{Board, RunConfig};
use flashram_minicc::{compile_program, OptLevel, SourceUnit};
use proptest::prelude::*;

/// A randomly generated integer expression over the variables `a`, `b`, `c`
/// and `i` (the loop counter).  Division and modulus are generated with
/// strictly positive divisors; shifts mask their left operand non-negative
/// and their shift amount to 0..=7 so that no operation relies on
/// implementation-defined behaviour.
#[derive(Debug, Clone)]
enum Expr {
    Const(i32),
    Var(&'static str),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, u32),
    Rem(Box<Expr>, u32),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Shl(Box<Expr>, u32),
    Shr(Box<Expr>, u32),
    Cmp(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Render as mini-C source.
    fn to_c(&self) -> String {
        match self {
            Expr::Const(v) => format!("({v})"),
            Expr::Var(name) => (*name).to_string(),
            Expr::Add(l, r) => format!("({} + {})", l.to_c(), r.to_c()),
            Expr::Sub(l, r) => format!("({} - {})", l.to_c(), r.to_c()),
            Expr::Mul(l, r) => format!("(({} & 1023) * ({} & 511))", l.to_c(), r.to_c()),
            Expr::Div(l, d) => format!("({} / {d})", l.to_c()),
            Expr::Rem(l, d) => format!("({} % {d})", l.to_c()),
            Expr::And(l, r) => format!("({} & {})", l.to_c(), r.to_c()),
            Expr::Or(l, r) => format!("({} | {})", l.to_c(), r.to_c()),
            Expr::Xor(l, r) => format!("({} ^ {})", l.to_c(), r.to_c()),
            Expr::Shl(l, s) => format!("((({}) & 65535) << {s})", l.to_c()),
            Expr::Shr(l, s) => format!("((({}) & 1048575) >> {s})", l.to_c()),
            Expr::Cmp(l, r) => format!("(({} < {}) ? 1 : 0)", l.to_c(), r.to_c()),
        }
    }
}

fn leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-1000i32..1000).prop_map(Expr::Const),
        prop_oneof![Just("a"), Just("b"), Just("c"), Just("i")].prop_map(Expr::Var),
    ]
}

fn arbitrary_expr() -> impl Strategy<Value = Expr> {
    leaf().prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Add(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Sub(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Mul(Box::new(l), Box::new(r))),
            (inner.clone(), 1u32..9).prop_map(|(l, d)| Expr::Div(Box::new(l), d)),
            (inner.clone(), 1u32..9).prop_map(|(l, d)| Expr::Rem(Box::new(l), d)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::And(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Or(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Xor(Box::new(l), Box::new(r))),
            (inner.clone(), 0u32..8).prop_map(|(l, s)| Expr::Shl(Box::new(l), s)),
            (inner.clone(), 0u32..8).prop_map(|(l, s)| Expr::Shr(Box::new(l), s)),
            (inner.clone(), inner).prop_map(|(l, r)| Expr::Cmp(Box::new(l), Box::new(r))),
        ]
    })
}

/// Wrap an expression into a full program: a `compute` function evaluated in
/// a loop with varying arguments, accumulated into the checksum `main`
/// returns.
fn program_source(expr: &Expr, a0: i32, b0: i32, c0: i32, iters: u32) -> String {
    format!(
        "
        int compute(int a, int b, int c, int i) {{
            return {expr};
        }}
        int main() {{
            int acc = 0;
            for (int i = 0; i < {iters}; i++) {{
                acc = acc ^ compute({a0} + i, {b0} - i, {c0} + 2 * i, i);
                acc += i;
            }}
            return acc;
        }}
        ",
        expr = expr.to_c(),
    )
}

fn run_at(source: &str, level: OptLevel) -> i32 {
    let program = compile_program(&[SourceUnit::application(source)], level)
        .unwrap_or_else(|e| panic!("compilation failed at {level}: {e}\nsource:\n{source}"));
    Board::stm32vldiscovery()
        .run_with_config(
            &program,
            &RunConfig {
                max_cycles: 20_000_000,
            },
        )
        .unwrap_or_else(|e| panic!("execution failed at {level}: {e}\nsource:\n{source}"))
        .return_value
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Every optimization level computes the same checksum as O0.
    #[test]
    fn all_levels_agree_with_o0(
        expr in arbitrary_expr(),
        a0 in -50i32..50,
        b0 in -50i32..50,
        c0 in -50i32..50,
        iters in 1u32..12,
    ) {
        let source = program_source(&expr, a0, b0, c0, iters);
        let reference = run_at(&source, OptLevel::O0);
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::Os] {
            let got = run_at(&source, level);
            prop_assert_eq!(
                got,
                reference,
                "{} diverges from O0 on:\n{}",
                level,
                source
            );
        }
    }

    /// Conditionals with randomly chosen thresholds agree across levels and
    /// the branch structure survives the optimizer.
    #[test]
    fn branchy_programs_agree_across_levels(
        threshold in -200i32..200,
        step in 1i32..7,
        limit in 5i32..40,
    ) {
        let source = format!(
            "
            int classify(int x) {{
                if (x < {threshold}) {{ return x * 3 - 1; }}
                if (x % 2 == 0) {{ return x / 2; }}
                return x + 7;
            }}
            int main() {{
                int acc = 0;
                for (int x = -{limit}; x < {limit}; x += {step}) {{
                    acc += classify(x);
                }}
                return acc;
            }}
            "
        );
        let reference = run_at(&source, OptLevel::O0);
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::Os] {
            prop_assert_eq!(run_at(&source, level), reference, "{} diverges", level);
        }
    }

    /// Global arrays written and re-read in loops agree across levels.
    #[test]
    fn array_programs_agree_across_levels(
        size in 4u32..24,
        scale in 1i32..9,
        offset in -20i32..20,
    ) {
        let source = format!(
            "
            int table[{size}];
            int main() {{
                for (int i = 0; i < {size}; i++) {{ table[i] = i * {scale} + {offset}; }}
                int acc = 0;
                for (int i = 0; i < {size}; i++) {{
                    if (table[i] > 0) {{ acc += table[i]; }} else {{ acc -= 1; }}
                }}
                for (int i = 1; i < {size}; i++) {{ table[i] += table[i - 1]; }}
                return acc + table[{size} - 1];
            }}
            "
        );
        let reference = run_at(&source, OptLevel::O0);
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::Os] {
            prop_assert_eq!(run_at(&source, level), reference, "{} diverges", level);
        }
    }
}
