//! Differential property tests: every execution engine (decoded, threaded
//! dispatch, tiered superblock) must be observably bit-identical to the
//! IR-walking reference interpreter — same `EnergyMeter` (to the energy
//! bit), same `ProfileData`, same return value, and the same errors,
//! including `CycleLimit { limit, executed }` at every possible budget,
//! budgets expiring inside superinstructions and superblocks included.

use flashram_ir::Section;
use flashram_mcu::{Board, Engine, RunConfig, RunError, RunResult};
use flashram_minicc::{compile_program, OptLevel, SourceUnit};
use proptest::prelude::*;

fn compile(src: &str, level: OptLevel) -> flashram_ir::MachineProgram {
    compile_program(&[SourceUnit::application(src)], level).unwrap()
}

/// Assert two run outcomes are bit-identical, errors included.
fn assert_same(
    engine: &Result<RunResult, RunError>,
    reference: &Result<RunResult, RunError>,
    what: &str,
) {
    match (engine, reference) {
        (Ok(d), Ok(r)) => {
            assert!(
                d.bits_eq(r),
                "{what}: results diverge\nengine: {d:?}\nreference: {r:?}"
            );
        }
        (Err(d), Err(r)) => assert_eq!(d, r, "{what}: errors diverge"),
        (d, r) => panic!("{what}: engine {d:?} vs reference {r:?}"),
    }
}

/// Run `program` on the reference interpreter and on every other engine,
/// asserting each is bit-identical to the reference.
fn run_both(board: &Board, program: &flashram_ir::MachineProgram, config: &RunConfig, what: &str) {
    let reference = board.run_reference_with_config(program, config);
    for engine in [Engine::Decoded, Engine::Threaded, Engine::Superblock] {
        let result = board.run_with_engine(program, config, engine);
        assert_same(&result, &reference, &format!("{what} [{engine}]"));
    }
}

/// A compact generated program: one of a few shapes covering arithmetic,
/// memory traffic and calls, with generated parameters.
#[derive(Debug, Clone, Copy)]
struct Job {
    shape: u8,
    param: i32,
    iters: u32,
}

fn job() -> impl Strategy<Value = Job> {
    (0u8..4, -40i32..40, 1u32..400).prop_map(|(shape, param, iters)| Job {
        shape,
        param,
        iters,
    })
}

fn source(job: Job) -> String {
    match job.shape {
        0 => format!(
            "int main() {{ int s = {p}; for (int i = 0; i < {n}; i++) {{ s += i * 3 - (s >> 2); }} return s; }}",
            p = job.param,
            n = job.iters,
        ),
        1 => format!(
            "
            int table[16];
            const int key[4] = {{3, 5, 7, 11}};
            int main() {{
                for (int i = 0; i < 16; i++) {{ table[i] = i * {p}; }}
                int s = 0;
                for (int i = 0; i < {n}; i++) {{ s += table[i % 16] ^ key[i % 4]; }}
                return s;
            }}
            ",
            p = job.param,
            n = job.iters % 64 + 1,
        ),
        2 => format!(
            "
            int f(int n) {{ if (n <= 1) return 1; return f(n - 1) + n * {p}; }}
            int main() {{ return f({n}); }}
            ",
            p = job.param,
            n = job.iters % 20 + 1,
        ),
        _ => format!(
            "
            unsigned mix(unsigned x) {{ return (x >> 3) ^ (x * 2654435761u) % 977; }}
            int main() {{
                unsigned s = {p}u;
                for (int i = 0; i < {n}; i++) {{ s = mix(s + i) / (i % 7 + 1); }}
                return (int)(s & 0xffff);
            }}
            ",
            p = job.param.unsigned_abs(),
            n = job.iters % 100 + 1,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Generated programs at every opt level: unlimited budget.
    #[test]
    fn generated_programs_match_the_reference(j in job()) {
        let board = Board::stm32vldiscovery();
        let src = source(j);
        for level in [OptLevel::O0, OptLevel::O2, OptLevel::Os] {
            let program = compile(&src, level);
            run_both(&board, &program, &RunConfig::default(), &format!("{j:?} at {level}"));
        }
    }

    /// Generated programs under tight generated budgets: the `CycleLimit`
    /// errors (limit *and* executed) must match exactly.
    #[test]
    fn generated_programs_match_under_cycle_limits(j in job(), max_cycles in 0u64..6000) {
        let board = Board::stm32vldiscovery();
        let program = compile(&source(j), OptLevel::O1);
        run_both(
            &board,
            &program,
            &RunConfig { max_cycles },
            &format!("{j:?} limited to {max_cycles}"),
        );
    }
}

/// Every budget from 0 to just past the program's full length: whatever the
/// limit — hitting a chunk boundary exactly, landing mid-segment, or one
/// cycle either side — both engines must agree on the result or on
/// `CycleLimit { limit, executed }`.
#[test]
fn every_cycle_budget_agrees_with_the_reference() {
    let board = Board::stm32vldiscovery();
    let src = "
        int square(int x) { return x * x; }
        int main() {
            int s = 0;
            for (int i = 0; i < 12; i++) { s += square(i) - (s >> 3); }
            return s;
        }
    ";
    let program = compile(src, OptLevel::O1);
    let total = board.run(&program).unwrap().cycles();
    assert!(total > 100, "sweep needs a nontrivial program ({total})");
    for limit in 0..=total + 2 {
        run_both(
            &board,
            &program,
            &RunConfig { max_cycles: limit },
            &format!("budget {limit}/{total}"),
        );
    }
}

/// A loop hot enough to cross the superblock promotion threshold, swept at
/// **every** cycle budget from 0 to just past completion.  Most budgets in
/// the upper range expire while the superblock tier is active, so this
/// pins down the elided-check certificate: `CycleLimit { limit, executed }`
/// must be bit-exact even when the reference interpreter's check would
/// have fired mid-iteration.  The loop body mixes memory traffic and
/// fusable arithmetic so superinstruction seams are covered too.
#[test]
fn hot_loop_budget_sweep_expires_mid_superblock() {
    let board = Board::stm32vldiscovery();
    let src = "
        int acc[4];
        int main() {
            int s = 0;
            for (int i = 0; i < 150; i++) {
                acc[i % 4] += i * 3;
                s += acc[(i + 1) % 4] - (s >> 2);
            }
            return s;
        }
    ";
    let program = compile(src, OptLevel::O2);

    // Prove the sweep exercises the tier it claims to: the full run must
    // actually build and execute at least one superblock.
    let full = board
        .run_with_engine(&program, &RunConfig::default(), Engine::Superblock)
        .unwrap();
    let tier = full.tier.expect("superblock engine reports tier stats");
    assert!(
        tier.superblocks_built >= 1 && tier.superblock_iterations > 64,
        "hot loop should tier up: {tier:?}"
    );

    let total = board.run(&program).unwrap().cycles();
    for limit in 0..=total + 2 {
        run_both(
            &board,
            &program,
            &RunConfig { max_cycles: limit },
            &format!("hot-loop budget {limit}/{total}"),
        );
    }
}

/// Tier stats are surfaced only by the superblock engine, and the
/// promotion counters are deterministic run to run.
#[test]
fn tier_stats_are_deterministic_and_engine_specific() {
    let board = Board::stm32vldiscovery();
    let src = "
        int main() {
            int s = 0;
            for (int i = 0; i < 500; i++) { s += i ^ (s >> 1); }
            return s;
        }
    ";
    let program = compile(src, OptLevel::O2);
    let config = RunConfig::default();

    let a = board
        .run_with_engine(&program, &config, Engine::Superblock)
        .unwrap();
    let b = board
        .run_with_engine(&program, &config, Engine::Superblock)
        .unwrap();
    assert_eq!(a.tier, b.tier, "tier stats must be deterministic");
    let tier = a.tier.expect("superblock engine reports tier stats");
    assert!(tier.hot_heads >= 1, "{tier:?}");
    assert!(tier.superblock_ops > 0, "{tier:?}");

    for engine in [Engine::Reference, Engine::Decoded, Engine::Threaded] {
        let r = board.run_with_engine(&program, &config, engine).unwrap();
        assert_eq!(r.tier, None, "{engine} should not report tier stats");
    }
}

/// RAM-resident code and indirect (instrumented) terminators: the
/// contention cycles and the Figure 4 branch costs must fold identically.
#[test]
fn ram_sections_and_indirect_terminators_match() {
    let board = Board::stm32vldiscovery();
    let src = "
        int buf[8];
        int main() {
            int s = 0;
            for (int i = 0; i < 40; i++) { buf[i % 8] = i; s += buf[(i * 3) % 8]; }
            return s;
        }
    ";
    let base = compile(src, OptLevel::O1);

    // Move main's blocks to RAM (contention on RAM loads/stores).
    let mut in_ram = base.clone();
    let main_index = in_ram.function_index("main").unwrap().index();
    for b in &mut in_ram.functions[main_index].blocks {
        b.section = Section::Ram;
    }
    run_both(&board, &in_ram, &RunConfig::default(), "all-RAM main");

    // Rewrite every terminator into its indirect long-range form.
    let mut indirect = base.clone();
    for f in &mut indirect.functions {
        for b in &mut f.blocks {
            b.term = b.term.clone().into_indirect();
        }
    }
    run_both(
        &board,
        &indirect,
        &RunConfig::default(),
        "indirect terminators",
    );

    // Both at once, under a mid-run cycle limit for good measure.
    let mut both = in_ram.clone();
    for f in &mut both.functions {
        for b in &mut f.blocks {
            b.term = b.term.clone().into_indirect();
        }
    }
    run_both(&board, &both, &RunConfig::default(), "RAM + indirect");
    let total = board.run(&both).unwrap().cycles();
    run_both(
        &board,
        &both,
        &RunConfig {
            max_cycles: total / 2,
        },
        "RAM + indirect, half budget",
    );
}

/// Memory faults surface identically (same fault, same address).
#[test]
fn memory_faults_match_the_reference() {
    let board = Board::stm32vldiscovery();
    // A dynamic index walks a local array far past the top of RAM.
    let src = "
        int main() {
            int buf[4];
            int s = 0;
            for (int i = 0; i < 50000; i += 16) { s += buf[i]; }
            return s;
        }
    ";
    let program = compile(src, OptLevel::O0);
    let decoded = board.run(&program);
    let reference = board.run_reference(&program);
    assert!(matches!(decoded, Err(RunError::Memory(_))), "{decoded:?}");
    assert_same(&decoded, &reference, "fault");
}

/// The structural checks the reference interpreter performs lazily are
/// performed eagerly at decode time — same category of error, reported
/// before anything runs.
#[test]
fn dangling_symbol_fails_at_decode_with_a_clear_error() {
    use flashram_isa::inst::{Inst, LitValue};
    use flashram_isa::SymbolId;

    let mut program = compile("int main() { return 3; }", OptLevel::O0);
    let main_index = program.function_index("main").unwrap().index();
    program.functions[main_index].blocks[0].insts.insert(
        0,
        Inst::LdrLit {
            rd: flashram_isa::Reg::R4,
            value: LitValue::Symbol(SymbolId(99)),
        },
    );
    let err = Board::stm32vldiscovery().decode(&program).unwrap_err();
    let RunError::BadProgram(why) = err else {
        panic!("expected BadProgram, got {err:?}");
    };
    assert!(
        why.contains("missing symbol @99"),
        "error should name the dangling symbol: {why}"
    );
}
