//! Degradation-path tests: forced `BudgetExhausted` and deadline expiry
//! must produce well-formed greedy-fallback responses, tagged honestly,
//! with truthful `solver_stats` accounting — the PR 6 fallback-stats fixes
//! extended to the service layer.

use std::sync::Arc;
use std::time::Duration;

use flashram_beebs::Benchmark;
use flashram_minicc::OptLevel;
use flashram_serve::{Outcome, PlacementServer, Query, Request, ServerConfig};

fn kernel() -> Arc<flashram_ir::MachineProgram> {
    Benchmark::by_name("2dfir")
        .expect("kernel exists")
        .compile_cached(OptLevel::O1)
        .expect("kernel compiles")
}

#[test]
fn node_budget_exhaustion_degrades_to_a_well_formed_heuristic() {
    // max_ilp_nodes = 0: the branch-and-bound gives up before finding any
    // integer solution, so every point degrades to the greedy fallback.
    let server = PlacementServer::new(ServerConfig {
        workers: 1,
        max_ilp_nodes: Some(0),
        ..ServerConfig::default()
    });
    server.register_program("2dfir", kernel());
    let response = server
        .solve(Request::point("2dfir", "stm32f100", 256, 1.5))
        .expect("the greedy fallback answers");

    assert_eq!(response.outcome, Outcome::Heuristic, "tagged heuristic");
    assert_eq!(response.points.len(), 1);
    let point = &response.points[0];
    // Well-formed: a feasible placement under the requested budget.
    assert!(point.model_ram_used <= 256);
    assert!(point.objective.is_finite() && point.objective > 0.0);
    assert!(!point.proven);
    // Truthful accounting: these are the *failed ILP attempt's* stats,
    // not zeros invented for the greedy pass.
    assert!(point.stats.budget_exhausted, "the node budget ran out");
    assert_eq!(
        point.stats.nodes_explored, 0,
        "zero budget explores nothing"
    );
    assert!(!point.stats.seeded, "a cold point query is never seeded");
    assert!(!point.stats.time_limit_hit, "no deadline was set");
    assert!(point.stats.wall_ms >= 0.0 && point.stats.wall_ms.is_finite());

    // Deterministic degradation is memoizable: an identical repeat is
    // answered from the memo, bit-identically.
    let repeat = server
        .solve(Request::point("2dfir", "stm32f100", 256, 1.5))
        .expect("solvable");
    assert!(repeat.memo_hit);
    assert_eq!(repeat.outcome, Outcome::Heuristic);
    assert_eq!(
        repeat.points[0].objective.to_bits(),
        point.objective.to_bits()
    );

    let stats = server.shutdown();
    assert_eq!(stats.heuristic, 2);
    assert_eq!(stats.exact, 0);
    assert_eq!(stats.timeout, 0);
}

#[test]
fn an_expired_deadline_degrades_to_a_timeout_tagged_fallback() {
    let server = PlacementServer::new(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    server.register_program("2dfir", kernel());
    let mut request = Request::point("2dfir", "stm32f100", 256, 1.5);
    request.deadline = Some(Duration::ZERO);
    let response = server.solve(request.clone()).expect("degrades, not fails");

    assert_eq!(response.outcome, Outcome::Timeout, "tagged timeout");
    let point = &response.points[0];
    assert!(point.model_ram_used <= 256, "still a feasible placement");
    assert!(point.objective.is_finite() && point.objective > 0.0);
    assert!(
        point.stats.time_limit_hit,
        "the stats say the wall clock, not the node budget, ended the solve"
    );
    assert_eq!(point.stats.nodes_explored, 0);

    // Timing-dependent answers are never memoized: re-submitting the same
    // request solves again (and without the deadline it is exact).
    let repeat = server.solve(request).expect("degrades again");
    assert!(!repeat.memo_hit, "timeouts are not memoized");
    assert_eq!(repeat.outcome, Outcome::Timeout);
    let relaxed = server
        .solve(Request::point("2dfir", "stm32f100", 256, 1.5))
        .expect("solvable");
    assert!(!relaxed.memo_hit, "no stale timeout answer was cached");
    assert_eq!(relaxed.outcome, Outcome::Exact);
    assert!(relaxed.points[0].proven);
    assert!(
        relaxed.points[0].objective <= point.objective,
        "the exact optimum is at least as good as the degraded answer"
    );

    let stats = server.shutdown();
    assert_eq!(stats.timeout, 2);
    assert_eq!(stats.exact, 1);
}

#[test]
fn a_generous_deadline_changes_nothing() {
    let server = PlacementServer::new(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    server.register_program("2dfir", kernel());
    let mut bounded = Request::point("2dfir", "stm32f100", 128, 1.5);
    bounded.deadline = Some(Duration::from_secs(600));
    let with_deadline = server.solve(bounded).expect("solvable");
    let without = server
        .solve(Request::point("2dfir", "stm32f100", 128, 1.5))
        .expect("solvable");
    assert_eq!(with_deadline.outcome, Outcome::Exact);
    assert!(
        !with_deadline.points[0].stats.time_limit_hit,
        "an unexpired deadline leaves no trace in the stats"
    );
    assert_eq!(
        with_deadline.points[0].objective.to_bits(),
        without.points[0].objective.to_bits(),
        "a deadline that never fires cannot change the answer"
    );
    // The exact answer (deadline or not) was memoized by the first solve.
    assert!(without.memo_hit);
    server.shutdown();
}

#[test]
fn degraded_sweeps_report_the_worst_point_outcome() {
    let server = PlacementServer::new(ServerConfig {
        workers: 1,
        max_ilp_nodes: Some(0),
        ..ServerConfig::default()
    });
    server.register_program("2dfir", kernel());
    let response = server
        .solve(Request {
            query: Query::Sweep {
                budgets: vec![0, 64, 256],
                x_limit: 1.5,
            },
            ..Request::point("2dfir", "stm32f100", 0, 1.5)
        })
        .expect("solvable");
    assert_eq!(response.points.len(), 3, "one point per requested budget");
    assert_eq!(
        response.outcome,
        Outcome::Heuristic,
        "any degraded point degrades the whole sweep's tag"
    );
    for point in &response.points {
        assert!(point.stats.budget_exhausted);
        assert!(point.objective.is_finite());
    }
    server.shutdown();
}

#[test]
fn backpressure_overloads_instead_of_growing_unboundedly() {
    // One worker, tiny queue: fill it with slow-ish requests, then assert
    // try_submit reports Overloaded rather than queueing forever.
    let server = PlacementServer::new(ServerConfig {
        workers: 1,
        queue_capacity: 2,
        ..ServerConfig::default()
    });
    server.register_program("2dfir", kernel());
    let mut tickets = Vec::new();
    let mut overloaded = false;
    for budget in 0..64u32 {
        match server.try_submit(Request::point("2dfir", "stm32f100", budget * 7, 1.5)) {
            Ok(t) => tickets.push(t),
            Err(flashram_serve::ServeError::Overloaded) => {
                overloaded = true;
                break;
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    assert!(
        overloaded,
        "a queue of capacity 2 must push back well before 64 submissions"
    );
    for ticket in tickets {
        ticket.wait().expect("admitted jobs still complete");
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, stats.submitted, "no admitted job leaked");
}
