//! Targeted fault-containment tests (the `fault-injection` feature):
//! inject exactly one fault with a budgeted [`FaultPlan`] and watch the
//! server recover — a contained panic quarantines its session and the
//! same cache key keeps answering bit-exactly, an injected spurious
//! exhaustion taints the degraded answer out of the memo table, the
//! watchdog respawns a wedged worker, and a short chaos soak holds every
//! containment invariant at once.

#![cfg(feature = "fault-injection")]

use std::sync::Arc;
use std::time::Duration;

use flashram_ir::MachineProgram;
use flashram_serve::workload::{
    check_equivalence, reference_response, reference_session, run_stress, ChaosConfig, StressConfig,
};
use flashram_serve::{
    FaultPlan, FaultSite, Outcome, PlacementServer, Request, ServeError, ServerConfig,
};

fn kernel(name: &str) -> Arc<MachineProgram> {
    flashram_beebs::Benchmark::by_name(name)
        .expect("kernel exists")
        .compile_cached(flashram_minicc::OptLevel::O1)
        .expect("kernel compiles")
}

/// Solve `request` sequentially on a fresh session (no plan installed on
/// this thread, so the oracle is fault-free by construction) and assert
/// the server's answer is bit-identical.
fn assert_matches_oracle(
    program: &MachineProgram,
    request: &Request,
    outcome: Outcome,
    points: &[flashram_core::SweepPoint],
) {
    let mut oracle = reference_session(program, &request.device, request.scope, None)
        .expect("oracle session builds");
    let expected = reference_response(&mut oracle, &request.query).expect("oracle solves");
    assert!(
        check_equivalence(&expected, outcome, points).is_none(),
        "the recovered answer must be bit-identical to the fault-free oracle"
    );
}

/// The acceptance demo: an injected mid-solve panic is contained to a
/// `SolverPanicked` response, the half-mutated session is quarantined,
/// and re-submitting the same request on the same cache key returns the
/// exact answer.
#[test]
fn contained_panic_leaves_the_cache_key_serving_exact_answers() {
    let plan = FaultPlan::new(0xBAD, 0)
        .site_rate(FaultSite::IlpPanic, 1000)
        .site_budget(FaultSite::IlpPanic, 1);
    let server = PlacementServer::with_fault_plan(
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
        plan.clone(),
    );
    let program = kernel("2dfir");
    server.register_program("2dfir", Arc::clone(&program));
    let request = Request::point("2dfir", "stm32f100", 128, 1.5);

    match server.solve(request.clone()) {
        Err(ServeError::SolverPanicked { message }) => {
            assert!(
                message.contains("injected fault"),
                "the panic payload survives containment: {message:?}"
            );
        }
        other => panic!("the first solve must hit the injected panic, got {other:?}"),
    }
    assert_eq!(plan.fired(FaultSite::IlpPanic), 1, "the budget caps at one");

    // The fault budget is spent: the rebuilt session answers exactly.
    let response = server
        .solve(request.clone())
        .expect("re-submitting after a contained panic is safe");
    assert!(!response.injected);
    // Whether the retry's admission raced the worker's quarantine (and was
    // rehomed to a fresh entry) or arrived after it, the half-mutated
    // session must never produce its answer — which the bit-identity
    // check below and the quarantine count prove.
    assert_matches_oracle(&program, &request, response.outcome, &response.points);

    let stats = server.shutdown();
    assert_eq!(
        stats.worker_panics, 1,
        "the panic was recorded, not swallowed"
    );
    assert_eq!(stats.cache.quarantined, 1);
    assert_eq!(
        stats.worker_restarts, 0,
        "a contained panic needs no respawn"
    );
    assert!(!stats.draining);
    assert_eq!(stats.completed, stats.submitted, "zero leaked tickets");
}

/// An injected spurious `BudgetExhausted` degrades the answer to the
/// greedy fallback, but the response is tainted (`injected`) and must
/// never be memoized: the next identical request re-solves cleanly and
/// only *that* answer enters the memo.
#[test]
fn injected_exhaustion_taints_the_answer_and_skips_the_memo() {
    let plan = FaultPlan::new(0x5EED, 0)
        .site_rate(FaultSite::IlpSpuriousExhaustion, 1000)
        .site_budget(FaultSite::IlpSpuriousExhaustion, 1);
    let server = PlacementServer::with_fault_plan(
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
        plan.clone(),
    );
    let program = kernel("2dfir");
    server.register_program("2dfir", Arc::clone(&program));
    let request = Request::point("2dfir", "stm32f100", 128, 1.5);

    let first = server
        .solve(request.clone())
        .expect("a spurious exhaustion degrades, it does not fail");
    assert!(first.injected, "the degraded answer carries the taint");
    assert_eq!(first.outcome, Outcome::Heuristic);

    let second = server
        .solve(request.clone())
        .expect("the fault budget is spent");
    assert!(!second.injected);
    assert!(
        !second.memo_hit,
        "the tainted answer must not have been memoized"
    );
    assert_matches_oracle(&program, &request, second.outcome, &second.points);

    let third = server.solve(request).expect("solvable");
    assert!(third.memo_hit, "the clean answer is what the memo replays");
    assert_eq!(
        second.points[0].objective.to_bits(),
        third.points[0].objective.to_bits()
    );

    let stats = server.shutdown();
    assert_eq!(stats.worker_panics, 0);
    assert_eq!(stats.cache.quarantined, 0, "no panic, no quarantine");
}

/// A worker wedged past the watchdog deadline (here: an injected coalesce
/// delay far longer than the deadline) has its in-flight job failed with
/// `SolverPanicked`, its session quarantined, and the worker respawned —
/// and the respawned worker serves the retry exactly.
#[test]
fn the_watchdog_restarts_a_wedged_worker_and_fails_its_jobs() {
    let plan = FaultPlan::new(9, 0)
        .site_rate(FaultSite::ServeCoalesceDelay, 1000)
        .site_budget(FaultSite::ServeCoalesceDelay, 1)
        .delay(Duration::from_millis(1500));
    let server = PlacementServer::with_fault_plan(
        ServerConfig {
            workers: 1,
            watchdog: Some(Duration::from_millis(100)),
            ..ServerConfig::default()
        },
        plan,
    );
    let program = kernel("2dfir");
    server.register_program("2dfir", Arc::clone(&program));
    let request = Request::point("2dfir", "stm32f100", 128, 1.5);

    match server.solve(request.clone()) {
        Err(ServeError::SolverPanicked { message }) => {
            assert!(
                message.contains("no progress"),
                "the watchdog diagnosis names the wedge: {message:?}"
            );
        }
        other => panic!("the wedged batch must be failed by the watchdog, got {other:?}"),
    }

    let response = server
        .solve(request.clone())
        .expect("the respawned worker serves the retry");
    assert_matches_oracle(&program, &request, response.outcome, &response.points);

    let stats = server.shutdown();
    assert_eq!(stats.worker_restarts, 1, "exactly one respawn");
    assert_eq!(
        stats.cache.quarantined, 1,
        "the wedged worker's session is suspect"
    );
    assert_eq!(stats.completed, stats.submitted, "zero leaked tickets");
    assert!(!stats.draining);
}

/// The short chaos soak: every failpoint firing at 6% over the CI
/// workload, with every containment invariant asserted by `run_stress`
/// itself (zero leaks, cache coherence, no terminal drain) plus the
/// bit-identity of surviving fault-free answers.
#[test]
fn short_chaos_soak_contains_every_fault() {
    let mut cfg = StressConfig::short(0xC4A05);
    cfg.chaos = Some(ChaosConfig {
        seed: 0xFA117,
        rate_per_mille: 60,
    });
    let report = run_stress(&cfg);
    assert!(
        report.failures.is_empty(),
        "chaos soak failures: {:?}",
        report.failures
    );
    assert_eq!(report.server.completed, report.server.submitted);
    assert_eq!(
        report.equivalence_failures, 0,
        "surviving answers stay exact"
    );
    assert_eq!(report.validation_failures, 0);
    let chaos = report.chaos.expect("chaos runs produce a chaos report");
    assert_eq!(
        chaos.succeeded + chaos.failed,
        report.server.submitted,
        "every request reached a terminal outcome"
    );
    let fired: u64 = chaos.sites.iter().map(|(_, _, fired)| fired).sum();
    assert!(
        fired > 0,
        "a 6% rate over the CI workload must actually inject"
    );
    assert!(
        chaos.succeeded > chaos.failed,
        "most requests survive a 6% fault rate: {} vs {}",
        chaos.succeeded,
        chaos.failed
    );
}
