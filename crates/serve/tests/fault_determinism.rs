//! Determinism under injection: the fault schedule is a pure function of
//! `(seed, site, hit-counter, rate)`, so
//!
//! * a rate-0 [`FaultPlan`] must be bit-identical to an uninstrumented
//!   server — the failpoints take the same no-fire branch the no-feature
//!   build compiles out entirely (and both builds are separately pinned
//!   to the same sequential oracle by the equivalence suite, so the
//!   identity carries across builds);
//! * replaying the same `(seed, plan)` over the same request sequence
//!   must fire identical fault sites and produce identical responses —
//!   including the surviving answers — no matter how many workers the
//!   server runs, because decisions are made by counter, never by wall
//!   clock or thread identity.

#![cfg(feature = "fault-injection")]

use std::collections::HashMap;
use std::sync::Arc;

use flashram_core::{PlacementSession, SweepPoint};
use flashram_ir::MachineProgram;
use flashram_serve::workload::{
    check_equivalence, reference_response, reference_session, WorkloadShape,
};
use flashram_serve::{
    FaultPlan, FaultSite, Outcome, PlacementServer, Request, ServeError, ServerConfig,
};
use proptest::prelude::*;

/// A small, fast workload shape (mirrors the equivalence suite).
fn shape() -> WorkloadShape {
    let mut shape = WorkloadShape::beebs_default();
    shape.kernels.truncate(2);
    shape.devices.truncate(2);
    shape.budgets = vec![0, 16, 64, 256];
    shape.x_limits = vec![1.1, 1.5, 2.0];
    shape
}

/// A fixed request sequence drawn from the shape.
fn requests(seed: u64, n: usize) -> Vec<Request> {
    let shape = shape();
    let mut rng = seed;
    (0..n).map(|_| shape.next_request(&mut rng)).collect()
}

/// What one request terminated as, in bit-comparable form.
#[derive(Debug, Clone)]
enum Terminal {
    Answered {
        outcome: Outcome,
        injected: bool,
        points: Vec<SweepPoint>,
    },
    Failed(ServeError),
}

/// One full replay: the per-request terminals plus the per-site
/// `(hits, fired)` schedule snapshot.
type Replay = (Vec<Terminal>, Vec<(u64, u64)>);

fn points_identical(a: &[SweepPoint], b: &[SweepPoint]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.objective.to_bits() == y.objective.to_bits()
                && x.selected == y.selected
                && x.model_ram_used == y.model_ram_used
        })
}

fn terminals_identical(a: &Terminal, b: &Terminal) -> bool {
    match (a, b) {
        (
            Terminal::Answered {
                outcome,
                injected,
                points,
            },
            Terminal::Answered {
                outcome: o2,
                injected: i2,
                points: p2,
            },
        ) => outcome == o2 && injected == i2 && points_identical(points, p2),
        (Terminal::Failed(e), Terminal::Failed(e2)) => e == e2,
        _ => false,
    }
}

/// Drive `requests` one at a time (so the hit-counter order is fixed by
/// the request order, not the thread schedule) through a server with
/// `workers` workers and the given plan.
fn drive(
    plan: Option<FaultPlan>,
    workers: usize,
    requests: &[Request],
    programs: &HashMap<String, Arc<MachineProgram>>,
) -> Vec<Terminal> {
    let config = ServerConfig {
        workers,
        cache_capacity: 3,
        ..ServerConfig::default()
    };
    let server = match plan {
        Some(plan) => PlacementServer::with_fault_plan(config, plan),
        None => PlacementServer::new(config),
    };
    for (name, program) in programs {
        server.register_program(name, Arc::clone(program));
    }
    let terminals = requests
        .iter()
        .map(|request| match server.solve(request.clone()) {
            Ok(response) => Terminal::Answered {
                outcome: response.outcome,
                injected: response.injected,
                points: response.points,
            },
            Err(e) => Terminal::Failed(e),
        })
        .collect();
    let stats = server.shutdown();
    assert_eq!(stats.completed, stats.submitted, "zero leaked tickets");
    terminals
}

fn compile_shape_kernels() -> HashMap<String, Arc<MachineProgram>> {
    shape()
        .kernels
        .iter()
        .map(|name| {
            let program = flashram_beebs::Benchmark::by_name(name)
                .expect("kernel exists")
                .compile_cached(flashram_minicc::OptLevel::O1)
                .expect("kernel compiles");
            (name.clone(), program)
        })
        .collect()
}

/// Every surviving (answered, untainted) terminal must match the
/// fault-free sequential oracle bit for bit.
fn assert_survivors_exact(
    requests: &[Request],
    terminals: &[Terminal],
    programs: &HashMap<String, Arc<MachineProgram>>,
) -> Result<(), TestCaseError> {
    let mut sessions: HashMap<(String, String), PlacementSession> = HashMap::new();
    for (request, terminal) in requests.iter().zip(terminals) {
        let Terminal::Answered {
            outcome,
            injected: false,
            points,
        } = terminal
        else {
            continue;
        };
        let session = match sessions.entry((request.program.clone(), request.device.clone())) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => v.insert(
                reference_session(
                    &programs[&request.program],
                    &request.device,
                    request.scope,
                    None,
                )
                .expect("reference session builds"),
            ),
        };
        let expected = reference_response(session, &request.query).expect("reference solves");
        let diff = check_equivalence(&expected, *outcome, points);
        prop_assert!(
            diff.is_none(),
            "surviving answer diverged from the oracle: {} on {}: {}",
            request.program,
            request.device,
            diff.unwrap_or_default()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    /// Rate 0: the plan is consulted at every failpoint and never fires,
    /// and the responses are bit-identical to a server with no plan
    /// installed at all.
    #[test]
    fn a_rate_zero_plan_is_bit_identical_to_an_uninstrumented_server(
        seed in 0u64..1_000_000,
        workers in 1usize..5,
    ) {
        let programs = compile_shape_kernels();
        let reqs = requests(seed, 10);
        let plan = FaultPlan::new(seed, 0);
        let plain = drive(None, workers, &reqs, &programs);
        let zeroed = drive(Some(plan.clone()), workers, &reqs, &programs);
        prop_assert_eq!(plain.len(), zeroed.len());
        for (i, (a, b)) in plain.iter().zip(&zeroed).enumerate() {
            prop_assert!(
                terminals_identical(a, b),
                "request {} diverged under the rate-0 plan: {:?} vs {:?}",
                i, a, b
            );
        }
        prop_assert_eq!(plan.total_fired(), 0, "rate 0 never fires");
        prop_assert!(
            FaultSite::ALL.iter().any(|&site| plan.hits(site) > 0),
            "the failpoints were actually consulted"
        );
        for terminal in &zeroed {
            if let Terminal::Answered { injected, .. } = terminal {
                prop_assert!(!injected, "nothing fired, nothing is tainted");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 2, ..ProptestConfig::default() })]

    /// The same `(seed, plan)` over the same request sequence replays the
    /// identical fault schedule — same per-site hit and fire counts, the
    /// fires exactly the decided prefix of the hit counter — and the
    /// identical terminals, across 1–4 workers.
    #[test]
    fn the_same_plan_replays_identical_fault_sites_and_answers_across_worker_counts(
        fault_seed in 0u64..1_000_000,
    ) {
        const RATE: u16 = 120;
        let programs = compile_shape_kernels();
        let reqs = requests(0xD15EA5E, 14);
        let mut baseline: Option<Replay> = None;
        for workers in 1..=4usize {
            let plan = FaultPlan::new(fault_seed, RATE);
            let terminals = drive(Some(plan.clone()), workers, &reqs, &programs);
            // Fires are exactly the decided prefix of each site's counter.
            for snap in plan.snapshot() {
                let decided = (0..snap.hits)
                    .filter(|&hit| FaultPlan::decide(fault_seed, snap.site, hit, RATE))
                    .count() as u64;
                prop_assert_eq!(
                    snap.fired, decided,
                    "site {} fired off-schedule", snap.site.name()
                );
            }
            assert_survivors_exact(&reqs, &terminals, &programs)?;
            let snapshot: Vec<(u64, u64)> =
                plan.snapshot().iter().map(|s| (s.hits, s.fired)).collect();
            match &baseline {
                None => baseline = Some((terminals, snapshot)),
                Some((expected_terminals, expected_snapshot)) => {
                    prop_assert_eq!(
                        &snapshot, expected_snapshot,
                        "{} workers reached a different fault schedule", workers
                    );
                    for (i, (a, b)) in terminals.iter().zip(expected_terminals).enumerate() {
                        prop_assert!(
                            terminals_identical(a, b),
                            "request {} diverged at {} workers: {:?} vs {:?}",
                            i, workers, a, b
                        );
                    }
                }
            }
        }
    }
}
