//! Concurrency-equivalence property test: N client threads submitting
//! random (kernel, budget, query-shape) requests through the server must
//! get **bit-identical** answers to the same queries solved sequentially
//! via `PlacementSession` — objectives compared by `f64::to_bits`,
//! placements by exact block-set equality — under any interleaving.
//!
//! Interleavings are exercised two ways, both seeded and reproducible:
//! the per-worker schedule jitter (`ServerConfig::worker_jitter_seed`)
//! perturbs when workers claim batches, and varying worker/client counts
//! changes how much coalescing and cache sharing actually happens
//! (1 worker = fully serialized, more workers = real concurrency).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use flashram_core::PlacementSession;
use flashram_serve::workload::{
    check_equivalence, reference_response, reference_session, WorkloadShape,
};
use flashram_serve::{Outcome, PlacementServer, Request, ServerConfig};
use proptest::prelude::*;

/// A small, fast workload shape: two kernels, two devices, modest budgets.
fn shape() -> WorkloadShape {
    let mut shape = WorkloadShape::beebs_default();
    shape.kernels.truncate(2);
    shape.devices.truncate(2);
    shape.budgets = vec![0, 16, 64, 256];
    shape.x_limits = vec![1.1, 1.5, 2.0];
    shape
}

type Answered = Vec<(Request, Outcome, Vec<flashram_core::SweepPoint>)>;
type Programs = HashMap<String, Arc<flashram_ir::MachineProgram>>;

/// Drive `clients` threads × `per_client` requests through a server with
/// `workers` workers, and return every (request, outcome, points) answered.
fn drive(seed: u64, workers: usize, clients: usize, per_client: usize) -> (Answered, Programs) {
    let shape = shape();
    let server = PlacementServer::new(ServerConfig {
        workers,
        cache_capacity: 3,
        worker_jitter_seed: Some(seed),
        ..ServerConfig::default()
    });
    let mut programs = HashMap::new();
    for name in &shape.kernels {
        let bench = flashram_beebs::Benchmark::by_name(name).expect("kernel exists");
        let program = bench
            .compile_cached(flashram_minicc::OptLevel::O1)
            .expect("kernel compiles");
        server.register_program(name, Arc::clone(&program));
        programs.insert(name.clone(), program);
    }
    let answered = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for client in 0..clients {
            let server = &server;
            let shape = &shape;
            let answered = &answered;
            scope.spawn(move || {
                let mut rng = seed ^ (client as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                for _ in 0..per_client {
                    let request = shape.next_request(&mut rng);
                    let response = server
                        .submit(request.clone())
                        .expect("submission is valid")
                        .wait()
                        .expect("workload queries are solvable");
                    answered.lock().expect("collect lock").push((
                        request,
                        response.outcome,
                        response.points,
                    ));
                }
            });
        }
    });
    let stats = server.shutdown();
    assert_eq!(
        stats.completed, stats.submitted,
        "zero-leak invariant: every admitted job answered"
    );
    (answered.into_inner().expect("collect lock"), programs)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
    #[test]
    fn concurrent_answers_are_bit_identical_to_sequential(
        seed in 0u64..1_000_000,
        workers in 1usize..5,
        clients in 1usize..4,
    ) {
        let (answered, programs) = drive(seed, workers, clients, 8);
        prop_assert!(!answered.is_empty());
        // Sequential reference: one session per (kernel, device), chain
        // reset per query — exactly what the server guarantees.
        let mut sessions: HashMap<(String, String), PlacementSession> = HashMap::new();
        for (request, outcome, points) in &answered {
            let session = match sessions
                .entry((request.program.clone(), request.device.clone()))
            {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => v.insert(
                    reference_session(
                        &programs[&request.program],
                        &request.device,
                        request.scope,
                        None,
                    )
                    .expect("reference session builds"),
                ),
            };
            let expected = reference_response(session, &request.query)
                .expect("reference solve succeeds");
            let diff = check_equivalence(&expected, *outcome, points);
            prop_assert!(
                diff.is_none(),
                "seed {}, workers {}, clients {}: {} on {}: {}",
                seed,
                workers,
                clients,
                request.program,
                request.device,
                diff.unwrap_or_default()
            );
        }
    }
}

/// The same equivalence with deliberately colliding session fingerprints:
/// the cache must disambiguate by content and still answer bit-identically.
#[test]
fn equivalence_survives_fingerprint_collisions() {
    let shape = shape();
    let server = PlacementServer::new(ServerConfig {
        workers: 3,
        cache_capacity: 2,
        fingerprint: |_| 0xC0111DE,
        worker_jitter_seed: Some(7),
        ..ServerConfig::default()
    });
    let mut programs = HashMap::new();
    for name in &shape.kernels {
        let bench = flashram_beebs::Benchmark::by_name(name).expect("kernel exists");
        let program = bench
            .compile_cached(flashram_minicc::OptLevel::O1)
            .expect("kernel compiles");
        server.register_program(name, Arc::clone(&program));
        programs.insert(name.clone(), program);
    }
    let mut rng = 99u64;
    let requests: Vec<Request> = (0..12).map(|_| shape.next_request(&mut rng)).collect();
    let tickets: Vec<_> = requests
        .iter()
        .map(|r| server.submit(r.clone()).expect("valid"))
        .collect();
    for (request, ticket) in requests.iter().zip(tickets) {
        let response = ticket.wait().expect("solvable");
        let mut session = reference_session(
            &programs[&request.program],
            &request.device,
            request.scope,
            None,
        )
        .expect("reference session builds");
        let expected = reference_response(&mut session, &request.query).expect("reference solves");
        assert!(
            check_equivalence(&expected, response.outcome, &response.points).is_none(),
            "collision-keyed cache must still answer exactly"
        );
    }
    let stats = server.shutdown();
    assert!(
        stats.cache.collisions > 0,
        "the constant fingerprint must actually collide"
    );
}

/// Responses answered from the memo table must be byte-for-byte the same
/// as the first solve of that query.
#[test]
fn memoized_answers_replay_the_first_solve() {
    let server = PlacementServer::new(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let bench = flashram_beebs::Benchmark::by_name("2dfir").expect("kernel exists");
    let program = bench
        .compile_cached(flashram_minicc::OptLevel::O1)
        .expect("kernel compiles");
    server.register_program("2dfir", program);
    let request = Request::point("2dfir", "stm32f100", 128, 1.5);
    let first = server.solve(request.clone()).expect("solvable");
    let second = server.solve(request.clone()).expect("solvable");
    assert!(second.memo_hit, "an identical repeat query hits the memo");
    assert_eq!(first.outcome, second.outcome);
    assert_eq!(
        first.points[0].objective.to_bits(),
        second.points[0].objective.to_bits()
    );
    assert_eq!(first.points[0].selected, second.points[0].selected);
    // A bit-different time bound is a different query.
    let mut nudged = request;
    nudged.query = flashram_serve::Query::Point {
        r_spare: 128,
        x_limit: 1.5 + f64::EPSILON,
    };
    let third = server.solve(nudged).expect("solvable");
    assert!(!third.memo_hit, "to_bits keying: epsilon changes the key");
}
