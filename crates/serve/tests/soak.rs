//! Soak tests: seeded stress runs asserting zero panics, zero queue leaks
//! (every admitted job answered), and a monotone cumulative cache-hit rate
//! on the repeat-heavy workload.
//!
//! The 60-second run is `#[ignore]`d (CI runs it in the non-blocking
//! stress step; locally: `cargo test -p flashram-serve --test soak --
//! --ignored`).  The short variant runs everywhere.

use flashram_serve::workload::{run_stress, StressConfig, StressReport};

/// The assertions shared by both soak lengths.
fn assert_soak_invariants(report: &StressReport) {
    assert!(
        report.failures.is_empty(),
        "soak failures: {:?}",
        report.failures
    );
    // Zero queue leaks: every admitted job was answered.  (A worker panic
    // would have propagated out of run_stress's shutdown already.)
    assert_eq!(report.server.completed, report.server.submitted);
    assert!(report.server.completed > 0, "the run did some work");
    assert_eq!(report.equivalence_failures, 0, "bit-identity holds");
    assert_eq!(report.validation_failures, 0, "placements stay correct");
    // Monotone cumulative cache-hit rate: on a repeat-heavy workload the
    // cumulative rate climbs as the working set gets cached and then holds
    // steady.  The workload deliberately keeps the cache smaller than the
    // working set, so the steady state wiggles by a few admissions' worth
    // of evictions around its plateau; a drop beyond that jitter band —
    // between consecutive samples or across the whole run — signals
    // eviction thrash or caching bugs.
    const JITTER: f64 = 0.05;
    for pair in report.hit_rate_timeline.windows(2) {
        assert!(
            pair[1] >= pair[0] - JITTER,
            "cache-hit rate regressed: {:?}",
            report.hit_rate_timeline
        );
    }
    if let (Some(first), Some(last)) = (
        report.hit_rate_timeline.first(),
        report.hit_rate_timeline.last(),
    ) {
        assert!(
            *last >= first - JITTER,
            "the cumulative hit rate must end no lower than it started: {:?}",
            report.hit_rate_timeline
        );
    }
}

#[test]
fn short_soak_is_leak_free_and_cache_monotone() {
    let report = run_stress(&StressConfig::short(0xBEEB5));
    assert_soak_invariants(&report);
    assert!(
        report.session_hit_rate > 0.5,
        "3 kernels × 2 devices over 160 requests is repeat-heavy: {:.2}",
        report.session_hit_rate
    );
}

#[test]
#[ignore = "60s soak; run explicitly or via the CI stress step"]
fn sixty_second_soak_survives_under_load() {
    let mut cfg = StressConfig::short(0x50AC);
    cfg.clients = 8;
    cfg.duration = Some(std::time::Duration::from_secs(60));
    cfg.shape = flashram_serve::WorkloadShape::beebs_default();
    // A dash of deadline traffic so the degradation path soaks too.
    cfg.shape.deadline_per_mille = 50;
    cfg.validate_per_client = 8;
    let report = run_stress(&cfg);
    assert_soak_invariants(&report);
    assert!(
        report.server.timeout > 0,
        "the deadline mix must exercise the timeout path"
    );
    assert!(
        report.throughput_rps > 1.0,
        "the server made steady progress"
    );
}
