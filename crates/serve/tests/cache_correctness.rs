//! Cache-correctness tests: LRU eviction, staleness after program
//! re-registration, and explicit fingerprint-collision coverage, all
//! through the public server API.

use std::sync::Arc;

use flashram_minicc::{compile_program, OptLevel, SourceUnit};
use flashram_serve::workload::{check_equivalence, reference_response, reference_session};
use flashram_serve::{PlacementServer, Query, Request, ServerConfig};

/// A kernel with a hot loop in a helper; `extra` pads the loop body with
/// additional statements, changing block sizes and hence the optimal
/// placement — so two `program()`s with different `extra` have genuinely
/// different optima (asserted below).
fn program(extra: usize) -> Arc<flashram_ir::MachineProgram> {
    let padding: String = (0..extra).map(|k| format!("s += i * {k}; ")).collect();
    let src = format!(
        "
        int helper(int n) {{
            int s = 0;
            for (int i = 0; i < n; i++) {{
                {padding}
                if (i % 3 == 0) {{ s += i * 2; }} else {{ s -= i; }}
            }}
            return s;
        }}
        int cold(int n) {{
            int s = 1;
            for (int i = 0; i < n; i++) {{ s = s * 3 + i; }}
            return s;
        }}
        int main() {{ return helper(50) + cold(7); }}
        "
    );
    Arc::new(compile_program(&[SourceUnit::application(&src)], OptLevel::O1).expect("compiles"))
}

fn point(program: &str, budget: u32) -> Request {
    Request::point(program, "stm32f100", budget, 1.5)
}

#[test]
fn re_registering_a_name_never_serves_a_stale_placement() {
    let server = PlacementServer::new(ServerConfig {
        workers: 2,
        cache_capacity: 4,
        ..ServerConfig::default()
    });
    let old = program(1);
    let new = program(12);
    server.register_program("app", Arc::clone(&old));
    let before = server.solve(point("app", 96)).expect("solvable");

    // Same name, different contents: the cached session of the old
    // contents must not answer for the new ones.
    server.register_program("app", Arc::clone(&new));
    let after = server.solve(point("app", 96)).expect("solvable");

    let mut reference =
        reference_session(&new, "stm32f100", Default::default(), None).expect("reference session");
    let expected = reference_response(
        &mut reference,
        &Query::Point {
            r_spare: 96,
            x_limit: 1.5,
        },
    )
    .expect("reference solve");
    assert!(
        check_equivalence(&expected, after.outcome, &after.points).is_none(),
        "post-re-registration answer must match a fresh solve of the new contents"
    );
    assert!(
        !after.session_hit,
        "new contents have a new fingerprint: they cannot hit the old session"
    );
    assert_ne!(
        before.points[0].objective.to_bits(),
        after.points[0].objective.to_bits(),
        "sanity: the two programs genuinely have different optima, so a \
         stale answer would have been detectable"
    );

    // And the old contents, re-registered again, still answer like the old
    // contents (its cached session is intact, not poisoned).
    server.register_program("app", Arc::clone(&old));
    let revived = server.solve(point("app", 96)).expect("solvable");
    assert!(revived.session_hit, "the old session is still cached");
    assert_eq!(
        revived.points[0].objective.to_bits(),
        before.points[0].objective.to_bits()
    );
    server.shutdown();
}

#[test]
fn colliding_fingerprints_coexist_and_answer_correctly() {
    // Force every program onto the same fingerprint: the cache must fall
    // back to deep content comparison and keep one entry per program.
    let server = PlacementServer::new(ServerConfig {
        workers: 2,
        cache_capacity: 8,
        fingerprint: |_| 7,
        ..ServerConfig::default()
    });
    let a = program(1);
    let b = program(12);
    server.register_program("a", Arc::clone(&a));
    server.register_program("b", Arc::clone(&b));

    let ra = server.solve(point("a", 96)).expect("solvable");
    let rb = server.solve(point("b", 96)).expect("solvable");
    assert_ne!(
        ra.points[0].objective.to_bits(),
        rb.points[0].objective.to_bits(),
        "collided entries must not share answers"
    );
    for (prog, response) in [(&a, &ra), (&b, &rb)] {
        let mut reference = reference_session(prog, "stm32f100", Default::default(), None)
            .expect("reference session");
        let expected = reference_response(
            &mut reference,
            &Query::Point {
                r_spare: 96,
                x_limit: 1.5,
            },
        )
        .expect("reference solve");
        assert!(check_equivalence(&expected, response.outcome, &response.points).is_none());
    }
    // Repeats still hit their own entry.
    let ra2 = server.solve(point("a", 96)).expect("solvable");
    assert!(ra2.session_hit && ra2.memo_hit);
    assert_eq!(
        ra.points[0].objective.to_bits(),
        ra2.points[0].objective.to_bits()
    );

    let stats = server.shutdown();
    assert!(
        stats.cache.collisions > 0,
        "the collision path must actually have been exercised"
    );
    assert_eq!(stats.errors, 0);
}

#[test]
fn lru_eviction_is_observable_and_never_wrong() {
    let server = PlacementServer::new(ServerConfig {
        workers: 1,
        cache_capacity: 2,
        ..ServerConfig::default()
    });
    let programs: Vec<_> = [1, 6, 12].iter().map(|&w| program(w)).collect();
    for (i, p) in programs.iter().enumerate() {
        server.register_program(&format!("p{i}"), Arc::clone(p));
    }
    // Fill the cache (p0, p1), then insert p2: the LRU entry (p0) is
    // evicted.  Querying p0 again must rebuild and still be exact.
    let first: Vec<_> = (0..3)
        .map(|i| server.solve(point(&format!("p{i}"), 64)).expect("solvable"))
        .collect();
    let again = server.solve(point("p0", 64)).expect("solvable");
    assert!(
        !again.session_hit,
        "p0 was evicted, so its session must have been rebuilt"
    );
    assert_eq!(
        first[0].points[0].objective.to_bits(),
        again.points[0].objective.to_bits(),
        "an evicted-and-rebuilt session answers bit-identically"
    );
    assert_eq!(first[0].points[0].selected, again.points[0].selected);

    let stats = server.shutdown();
    assert!(
        stats.cache.evictions >= 1,
        "capacity 2 with 3 programs evicts"
    );
    assert_eq!(stats.errors, 0);
    // Monotone counters: every admission is exactly one hit or miss.
    assert_eq!(
        stats.cache.hits + stats.cache.misses,
        stats.submitted,
        "one cache lookup per admission"
    );
}
