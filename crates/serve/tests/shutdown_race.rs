//! Regression test for the `try_submit`/shutdown race: a ticket admitted
//! before (or concurrently with) shutdown must always resolve — to its
//! answer or to `ServeError::Shutdown` — never hang or leak, and the
//! server's counters must reconcile to `completed == submitted` on every
//! teardown path.
//!
//! The companion in-module test (`crates/serve/src/server.rs`) hammers
//! `try_submit` truly concurrently with the shutdown flag flip; this one
//! covers the public-API shape of the race: shut the server down while a
//! burst of admitted tickets is still queued and in flight, then redeem
//! every ticket after the server is gone.

use std::sync::{Arc, Mutex};

use flashram_serve::{PlacementServer, Request, ServeError, ServerConfig, Ticket};

#[test]
fn tickets_admitted_before_shutdown_always_resolve() {
    let program = flashram_beebs::Benchmark::by_name("2dfir")
        .expect("kernel exists")
        .compile_cached(flashram_minicc::OptLevel::O1)
        .expect("kernel compiles");
    // Several rounds shift the interleaving between the last admission,
    // the workers' progress through the queue, and the shutdown call.
    for round in 0..6u32 {
        let server = PlacementServer::new(ServerConfig {
            workers: 1 + (round as usize % 2),
            queue_capacity: 256,
            ..ServerConfig::default()
        });
        server.register_program("2dfir", Arc::clone(&program));
        let tickets: Mutex<Vec<Ticket>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for client in 0..3u32 {
                let server = &server;
                let tickets = &tickets;
                scope.spawn(move || {
                    for i in 0..20u32 {
                        let budget = [0u32, 16, 64, 256][((round + client + i) % 4) as usize];
                        let request = Request::point("2dfir", "stm32f100", budget, 1.5);
                        match server.try_submit(request) {
                            Ok(ticket) => tickets.lock().expect("ticket lock").push(ticket),
                            Err(ServeError::Overloaded) => std::thread::yield_now(),
                            Err(e) => panic!("unexpected admission error: {e}"),
                        }
                    }
                });
            }
        });
        // Shut down while most of the burst is still queued: workers must
        // drain every admitted job (or the drain must fail its ticket),
        // never strand one.
        let stats = server.shutdown();
        assert_eq!(
            stats.completed, stats.submitted,
            "round {round}: zero leaked tickets across shutdown"
        );
        assert_eq!(stats.queued, 0, "round {round}: nothing left in the queue");
        for ticket in tickets.into_inner().expect("ticket lock") {
            match ticket.wait() {
                Ok(_) | Err(ServeError::Shutdown) => {}
                Err(e) => panic!("round {round}: a ticket resolved to {e}"),
            }
        }
    }
}
