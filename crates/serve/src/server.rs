//! The concurrent placement server.
//!
//! # Architecture
//!
//! ```text
//! clients ──submit──▶ admission queue ──▶ per-session job lists ──▶ workers
//!                     (bounded, blocks      (coalesced batches)      (claim a
//!                      or Overloaded)                                session,
//!                                                                    drain its
//!                                                                    batch)
//! ```
//!
//! A request is validated and bound to a [`SessionCache`] entry at
//! admission; jobs for the same entry queue together and a worker drains
//! the whole batch in one claim, so repeat traffic against one program
//! shares a single model build and memo table.  Independent entries are
//! claimed by whichever worker is free — the ready queue is the
//! work-stealing point, so a long solve on one session never blocks
//! traffic for the others (the uneven 0.1 ms–1.3 s per-point costs in
//! `BENCH_solver.json` are exactly why).
//!
//! # Why results stay deterministic
//!
//! Warm-started chained solves are only tolerance-equal (≤ 1e-6) to cold
//! ones, so sharing chain state across requests would make answers depend
//! on arrival order.  The server instead makes every response a **pure
//! function of the request** (program contents, device, scope, query):
//!
//! * every query solves from a reset chain
//!   ([`PlacementSession::reset_chain`]) — point queries get a cold root;
//!   multi-point queries (sweeps, frontiers) chain **internally**, in the
//!   order the request defines, exactly as a sequential caller would;
//! * what *is* shared across requests — the built model and the memo
//!   table — cannot change answers: the model is immutable per entry, and
//!   the memo only replays a previously computed answer for a bit-identical
//!   query key ([`f64::to_bits`] on the time bound);
//! * answers that depend on wall-clock timing (deadline expiry,
//!   [`Outcome::Timeout`]) are **never** memoized.
//!
//! The `equivalence` integration test drives N client threads against the
//! server under seeded schedule jitter and asserts bit-identical objectives
//! and placements versus a sequential [`PlacementSession`].
//!
//! # Degradation
//!
//! Per-request deadlines are measured from admission.  The remaining
//! budget is handed to the branch-and-bound as a wall-clock limit
//! ([`time_limit`](flashram_ilp::BranchBound::time_limit)); when it
//! expires the solver surfaces its best incumbent, or — if no integer
//! solution was found — the server falls back to [`GreedySolver`] via
//! [`PlacementSession::solve_point_degraded`], tagging the response
//! [`Outcome::Timeout`].  Node-budget exhaustion degrades the same way but
//! deterministically, and is tagged [`Outcome::Heuristic`].  In every case
//! the response's [`SweepPoint::stats`] report the *actual* ILP effort
//! spent (the failed attempt's stats for a greedy fallback), never zeros.
//!
//! [`GreedySolver`]: flashram_ilp::GreedySolver
//! [`PlacementSession`]: flashram_core::PlacementSession
//! [`PlacementSession::reset_chain`]: flashram_core::PlacementSession::reset_chain
//! [`PlacementSession::solve_point_degraded`]: flashram_core::PlacementSession::solve_point_degraded
//! [`SweepPoint::stats`]: flashram_core::SweepPoint

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use flashram_core::{
    OptimizeError, OptimizerConfig, PlacementSession, PointResolution, SweepPoint,
};
use flashram_device::DEVICE_DB;
use flashram_ilp::SolveError;
use flashram_ir::MachineProgram;
use flashram_mcu::Board;

use crate::cache::{CacheStats, EntryId, EntryState, MemoEntry, SessionCache, SessionKey};
use crate::request::{Outcome, Query, Request, Response, ServeError};

/// Configuration for [`PlacementServer::new`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads solving placements.
    pub workers: usize,
    /// Admission-queue bound: at most this many jobs queued (not yet
    /// claimed by a worker).  [`PlacementServer::submit`] blocks while
    /// full; [`PlacementServer::try_submit`] returns
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Maximum cached sessions (see [`SessionCache`]).
    pub cache_capacity: usize,
    /// Branch-and-bound node budget per point; exhausting it degrades the
    /// response to [`Outcome::Heuristic`] deterministically.  `None` uses
    /// the solver default.
    pub max_ilp_nodes: Option<usize>,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Program content fingerprint for [`SessionKey`]s.  Pluggable so
    /// tests can force collisions; collisions are always survivable (the
    /// cache compares full contents), only slower.
    pub fingerprint: fn(&MachineProgram) -> u64,
    /// When set, each worker sleeps a seeded pseudo-random few hundred
    /// microseconds before claiming work, perturbing the schedule
    /// reproducibly.  The concurrency-equivalence tests sweep this seed to
    /// exercise many interleavings.
    pub worker_jitter_seed: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(1),
            queue_capacity: 64,
            cache_capacity: 8,
            max_ilp_nodes: None,
            default_deadline: None,
            fingerprint: MachineProgram::content_fingerprint,
            worker_jitter_seed: None,
        }
    }
}

/// Monotone server counters (a snapshot; see [`PlacementServer::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Responses delivered (successes and errors alike).
    pub completed: u64,
    /// Responses that were errors ([`ServeError`]).
    pub errors: u64,
    /// Responses tagged [`Outcome::Exact`].
    pub exact: u64,
    /// Responses tagged [`Outcome::Heuristic`].
    pub heuristic: u64,
    /// Responses tagged [`Outcome::Timeout`].
    pub timeout: u64,
    /// Admissions that found their session already cached.
    pub session_hits: u64,
    /// Admissions that created a new session entry.
    pub session_misses: u64,
    /// Responses answered from a session's memo table without solving.
    pub memo_hits: u64,
    /// The session cache's own counters.
    pub cache: CacheStats,
    /// Jobs currently queued (admitted, not yet drained by a worker).
    pub queued: usize,
}

struct Job {
    query: Query,
    deadline: Option<Instant>,
    enqueued: Instant,
    session_hit: bool,
    tx: mpsc::Sender<Result<Response, ServeError>>,
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    errors: u64,
    exact: u64,
    heuristic: u64,
    timeout: u64,
    session_hits: u64,
    session_misses: u64,
    memo_hits: u64,
}

struct State {
    cache: SessionCache,
    registry: HashMap<String, (Arc<MachineProgram>, u64)>,
    pending: HashMap<EntryId, Vec<Job>>,
    ready: VecDeque<EntryId>,
    in_ready: HashSet<EntryId>,
    queued: usize,
    shutdown: bool,
    counters: Counters,
}

struct Shared {
    cfg: ServerConfig,
    state: Mutex<State>,
    /// Signaled when `ready` gains an entry or shutdown begins.
    work: Condvar,
    /// Signaled when queue slots free up.
    space: Condvar,
}

/// A pending response: returned by [`PlacementServer::submit`], redeemed
/// with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response, ServeError>>,
}

impl Ticket {
    /// Block until the server answers.
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }
}

/// The long-running placement service (see the module docs).
///
/// Dropping the server shuts it down gracefully: no new admissions, every
/// already-admitted job is still solved and answered, workers joined.
pub struct PlacementServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for PlacementServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlacementServer")
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl PlacementServer {
    /// Start the server: spawns `config.workers` solver threads.
    pub fn new(config: ServerConfig) -> PlacementServer {
        let shared = Arc::new(Shared {
            cfg: config,
            state: Mutex::new(State {
                cache: SessionCache::new(config.cache_capacity),
                registry: HashMap::new(),
                pending: HashMap::new(),
                ready: VecDeque::new(),
                in_ready: HashSet::new(),
                queued: 0,
                shutdown: false,
                counters: Counters::default(),
            }),
            work: Condvar::new(),
            space: Condvar::new(),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("placement-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawning a worker thread")
            })
            .collect();
        PlacementServer { shared, workers }
    }

    /// Register (or re-register) `name`.  Re-registering with different
    /// contents changes the content fingerprint, so cached sessions of the
    /// old contents can never answer for the new ones (and vice versa —
    /// requests already admitted against the old contents still resolve
    /// against them).
    pub fn register_program(&self, name: &str, program: Arc<MachineProgram>) {
        let fp = (self.shared.cfg.fingerprint)(&program);
        let mut st = self.lock();
        st.registry.insert(name.to_string(), (program, fp));
    }

    /// Admit a request, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownProgram`] / [`ServeError::UnknownDevice`] for
    /// unresolvable names, [`ServeError::ShuttingDown`] after shutdown.
    pub fn submit(&self, req: Request) -> Result<Ticket, ServeError> {
        self.enqueue(req, true)
    }

    /// Admit a request without blocking.
    ///
    /// # Errors
    ///
    /// As [`PlacementServer::submit`], plus [`ServeError::Overloaded`]
    /// when the queue is full (the backpressure signal).
    pub fn try_submit(&self, req: Request) -> Result<Ticket, ServeError> {
        self.enqueue(req, false)
    }

    /// Submit and wait: the synchronous convenience wrapper.
    ///
    /// # Errors
    ///
    /// Everything [`PlacementServer::submit`] and the solve itself can
    /// produce.
    pub fn solve(&self, req: Request) -> Result<Response, ServeError> {
        self.submit(req)?.wait()
    }

    /// A snapshot of the server counters.
    pub fn stats(&self) -> ServerStats {
        let st = self.lock();
        ServerStats {
            submitted: st.counters.submitted,
            completed: st.counters.completed,
            errors: st.counters.errors,
            exact: st.counters.exact,
            heuristic: st.counters.heuristic,
            timeout: st.counters.timeout,
            session_hits: st.counters.session_hits,
            session_misses: st.counters.session_misses,
            memo_hits: st.counters.memo_hits,
            cache: st.cache.stats(),
            queued: st.queued,
        }
    }

    /// Stop admitting, drain every queued job, join the workers, and
    /// return the final counters.  Zero-leak guarantee: on return,
    /// `stats.completed == stats.submitted`.
    pub fn shutdown(mut self) -> ServerStats {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            handle.join().expect("a worker thread panicked");
        }
        self.stats()
    }

    fn begin_shutdown(&self) {
        let mut st = self.lock();
        st.shutdown = true;
        self.shared.work.notify_all();
        self.shared.space.notify_all();
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.shared
            .state
            .lock()
            .expect("server state lock poisoned")
    }

    fn enqueue(&self, req: Request, block: bool) -> Result<Ticket, ServeError> {
        let device = DEVICE_DB
            .get(&req.device)
            .ok_or_else(|| ServeError::UnknownDevice(req.device.clone()))?;
        let mut st = self.lock();
        loop {
            if st.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if st.queued < self.shared.cfg.queue_capacity {
                break;
            }
            if !block {
                return Err(ServeError::Overloaded);
            }
            st = self
                .shared
                .space
                .wait(st)
                .expect("server state lock poisoned");
        }
        let (program, fingerprint) = st
            .registry
            .get(&req.program)
            .cloned()
            .ok_or_else(|| ServeError::UnknownProgram(req.program.clone()))?;
        let key = SessionKey {
            fingerprint,
            device: device.key,
            scope: req.scope,
        };
        let (id, session_hit) = st.cache.lookup_or_insert(key, &program);
        st.cache.pin(id);
        if session_hit {
            st.counters.session_hits += 1;
        } else {
            st.counters.session_misses += 1;
        }
        let now = Instant::now();
        let deadline = req
            .deadline
            .or(self.shared.cfg.default_deadline)
            .map(|d| now + d);
        let (tx, rx) = mpsc::channel();
        st.pending.entry(id).or_default().push(Job {
            query: req.query,
            deadline,
            enqueued: now,
            session_hit,
            tx,
        });
        st.queued += 1;
        st.counters.submitted += 1;
        if !st.in_ready.contains(&id) && !st.cache.is_claimed(id) {
            st.ready.push_back(id);
            st.in_ready.insert(id);
            self.shared.work.notify_one();
        }
        Ok(Ticket { rx })
    }
}

impl Drop for PlacementServer {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            // Propagating a worker panic out of drop would abort; the soak
            // test checks for panics via `shutdown()` instead.
            let _ = handle.join();
        }
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut jitter = shared
        .cfg
        .worker_jitter_seed
        .map(|seed| seed ^ (index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    loop {
        if let Some(state) = jitter.as_mut() {
            std::thread::sleep(Duration::from_micros(xorshift(state) % 300));
        }
        let mut st = shared.state.lock().expect("server state lock poisoned");
        let id = loop {
            if let Some(id) = st.ready.pop_front() {
                break id;
            }
            if st.shutdown {
                return;
            }
            st = shared.work.wait(st).expect("server state lock poisoned");
        };
        st.in_ready.remove(&id);
        let (program, mut state) = st
            .cache
            .claim(id)
            .expect("entries in the ready queue are unclaimed");
        let jobs = st.pending.remove(&id).unwrap_or_default();
        let key = st.cache.key_of(id);
        st.cache.unpin(id, jobs.len());
        st.queued -= jobs.len();
        shared.space.notify_all();
        drop(st);

        let batch = solve_batch(&shared.cfg, key, &program, &mut state, jobs);

        let mut st = shared.state.lock().expect("server state lock poisoned");
        st.cache.release(id, state);
        st.counters.completed += batch.completed;
        st.counters.errors += batch.errors;
        st.counters.exact += batch.exact;
        st.counters.heuristic += batch.heuristic;
        st.counters.timeout += batch.timeout;
        st.counters.memo_hits += batch.memo_hits;
        if st.pending.contains_key(&id) && !st.in_ready.contains(&id) {
            st.ready.push_back(id);
            st.in_ready.insert(id);
            shared.work.notify_one();
        }
    }
}

#[derive(Default)]
struct BatchTally {
    completed: u64,
    errors: u64,
    exact: u64,
    heuristic: u64,
    timeout: u64,
    memo_hits: u64,
}

/// Solve one coalesced batch of jobs against one session, sending each
/// job's response as it completes.
fn solve_batch(
    cfg: &ServerConfig,
    key: SessionKey,
    program: &Arc<MachineProgram>,
    state: &mut EntryState,
    jobs: Vec<Job>,
) -> BatchTally {
    let mut tally = BatchTally::default();
    if state.session.is_none() {
        if let Err(e) = build_session(cfg, key, program, state) {
            for job in jobs {
                tally.completed += 1;
                tally.errors += 1;
                let _ = job.tx.send(Err(e.clone()));
            }
            return tally;
        }
    }
    for job in jobs {
        let started = Instant::now();
        let queue_ms = started.duration_since(job.enqueued).as_secs_f64() * 1e3;
        tally.completed += 1;
        let memo_key = job.query.memo_key();
        if let Some(memo) = state.memo.get(&memo_key) {
            tally.memo_hits += 1;
            tally_outcome(&mut tally, memo.outcome);
            let _ = job.tx.send(Ok(Response {
                outcome: memo.outcome,
                points: memo.points.clone(),
                session_hit: job.session_hit,
                memo_hit: true,
                queue_ms,
                solve_ms: 0.0,
            }));
            continue;
        }
        let session = state.session.as_mut().expect("session built above");
        let result = solve_query(session, &job.query, job.deadline);
        let solve_ms = started.elapsed().as_secs_f64() * 1e3;
        match result {
            Ok((outcome, points)) => {
                if outcome != Outcome::Timeout {
                    state.memo.insert(
                        memo_key,
                        MemoEntry {
                            outcome,
                            points: points.clone(),
                        },
                    );
                }
                tally_outcome(&mut tally, outcome);
                let _ = job.tx.send(Ok(Response {
                    outcome,
                    points,
                    session_hit: job.session_hit,
                    memo_hit: false,
                    queue_ms,
                    solve_ms,
                }));
            }
            Err(e) => {
                tally.errors += 1;
                let _ = job.tx.send(Err(e));
            }
        }
    }
    tally
}

fn tally_outcome(tally: &mut BatchTally, outcome: Outcome) {
    match outcome {
        Outcome::Exact => tally.exact += 1,
        Outcome::Heuristic => tally.heuristic += 1,
        Outcome::Timeout => tally.timeout += 1,
    }
}

fn build_session(
    cfg: &ServerConfig,
    key: SessionKey,
    program: &Arc<MachineProgram>,
    state: &mut EntryState,
) -> Result<(), ServeError> {
    let desc = DEVICE_DB.get(key.device).expect("validated at admission");
    let board = Board::new(desc);
    let config = OptimizerConfig {
        scope: key.scope,
        max_ilp_nodes: cfg.max_ilp_nodes,
        ..OptimizerConfig::default()
    };
    match PlacementSession::new(program, &board, &config) {
        Ok(session) => {
            state.session = Some(session);
            Ok(())
        }
        Err(OptimizeError::DoesNotFit(why)) => Err(ServeError::DoesNotFit(why)),
        Err(OptimizeError::Solver(e)) => Err(ServeError::Solver(e)),
    }
}

/// The remaining wall-clock budget; `Some(ZERO)` once expired, which the
/// branch-and-bound treats as "degrade immediately".
fn remaining(deadline: Option<Instant>) -> Option<Duration> {
    deadline.map(|d| d.saturating_duration_since(Instant::now()))
}

fn point_outcome(resolution: PointResolution, timed_out: bool) -> Outcome {
    match resolution {
        PointResolution::Exact => Outcome::Exact,
        _ if timed_out => Outcome::Timeout,
        _ => Outcome::Heuristic,
    }
}

pub(crate) fn solve_query(
    session: &mut PlacementSession,
    query: &Query,
    deadline: Option<Instant>,
) -> Result<(Outcome, Vec<SweepPoint>), ServeError> {
    // Purity: every query starts from a reset chain, so the answer cannot
    // depend on what this session solved before (module docs).
    session.reset_chain();
    let result = match query {
        Query::Point { r_spare, x_limit } => {
            session.solver.time_limit = remaining(deadline);
            let solved = session.solve_point_degraded(*r_spare, *x_limit)?;
            let outcome = point_outcome(solved.resolution, solved.point.stats.time_limit_hit);
            Ok((outcome, vec![solved.point]))
        }
        Query::Sweep { budgets, x_limit } => {
            // The coalesced sweep: one chained solve_chained run in request
            // order (solve_point_degraded chains across these calls because
            // the chain is only reset once, above).
            let mut outcome = Outcome::Exact;
            let mut points = Vec::with_capacity(budgets.len());
            for &budget in budgets {
                session.solver.time_limit = remaining(deadline);
                let solved = session.solve_point_degraded(budget, *x_limit)?;
                let this = point_outcome(solved.resolution, solved.point.stats.time_limit_hit);
                outcome = worst_outcome(outcome, this);
                points.push(solved.point);
            }
            Ok((outcome, points))
        }
        Query::Frontier {
            x_limit,
            max_budget,
        } => {
            session.solver.time_limit = remaining(deadline);
            match session.enumerate_frontier(*x_limit, *max_budget) {
                Ok(frontier) => {
                    let timed = frontier.points.iter().any(|p| p.stats.time_limit_hit);
                    let outcome = if timed {
                        Outcome::Timeout
                    } else if frontier.exact {
                        Outcome::Exact
                    } else {
                        Outcome::Heuristic
                    };
                    Ok((outcome, frontier.points))
                }
                Err(SolveError::BudgetExhausted(_)) => {
                    // The enumeration ran out of nodes or time with no
                    // incumbent at some step: collapse to the best-effort
                    // single point at the full budget.
                    session.reset_chain();
                    session.solver.time_limit = remaining(deadline);
                    let solved = session.solve_point_degraded(*max_budget, *x_limit)?;
                    let timed = solved.point.stats.time_limit_hit
                        || remaining(deadline).is_some_and(|r| r.is_zero());
                    let outcome = match solved.resolution {
                        PointResolution::Exact if !timed => Outcome::Heuristic,
                        resolution => point_outcome(resolution, timed),
                    };
                    Ok((outcome, vec![solved.point]))
                }
                Err(e) => Err(ServeError::Solver(e)),
            }
        }
    };
    session.solver.time_limit = None;
    result
}

fn worst_outcome(a: Outcome, b: Outcome) -> Outcome {
    use Outcome::*;
    match (a, b) {
        (Timeout, _) | (_, Timeout) => Timeout,
        (Heuristic, _) | (_, Heuristic) => Heuristic,
        _ => Exact,
    }
}
