//! The concurrent placement server.
//!
//! # Architecture
//!
//! ```text
//! clients ──submit──▶ admission queue ──▶ per-session job lists ──▶ workers
//!                     (bounded, blocks      (coalesced batches)      (claim a
//!                      or Overloaded)                                session,
//!                                                                    drain its
//!                                                                    batch)
//! ```
//!
//! A request is validated and bound to a [`SessionCache`] entry at
//! admission; jobs for the same entry queue together and a worker drains
//! the whole batch in one claim, so repeat traffic against one program
//! shares a single model build and memo table.  Independent entries are
//! claimed by whichever worker is free — the ready queue is the
//! work-stealing point, so a long solve on one session never blocks
//! traffic for the others (the uneven 0.1 ms–1.3 s per-point costs in
//! `BENCH_solver.json` are exactly why).
//!
//! # Why results stay deterministic
//!
//! Warm-started chained solves are only tolerance-equal (≤ 1e-6) to cold
//! ones, so sharing chain state across requests would make answers depend
//! on arrival order.  The server instead makes every response a **pure
//! function of the request** (program contents, device, scope, query):
//!
//! * every query solves from a reset chain
//!   ([`PlacementSession::reset_chain`]) — point queries get a cold root;
//!   multi-point queries (sweeps, frontiers) chain **internally**, in the
//!   order the request defines, exactly as a sequential caller would;
//! * what *is* shared across requests — the built model and the memo
//!   table — cannot change answers: the model is immutable per entry, and
//!   the memo only replays a previously computed answer for a bit-identical
//!   query key ([`f64::to_bits`] on the time bound);
//! * answers that depend on wall-clock timing (deadline expiry,
//!   [`Outcome::Timeout`]) are **never** memoized.
//!
//! The `equivalence` integration test drives N client threads against the
//! server under seeded schedule jitter and asserts bit-identical objectives
//! and placements versus a sequential [`PlacementSession`].
//!
//! # Degradation
//!
//! Per-request deadlines are measured from admission.  The remaining
//! budget is handed to the branch-and-bound as a wall-clock limit
//! ([`time_limit`](flashram_ilp::BranchBound::time_limit)); when it
//! expires the solver surfaces its best incumbent, or — if no integer
//! solution was found — the server falls back to [`GreedySolver`] via
//! [`PlacementSession::solve_point_degraded`], tagging the response
//! [`Outcome::Timeout`].  Node-budget exhaustion degrades the same way but
//! deterministically, and is tagged [`Outcome::Heuristic`].  In every case
//! the response's [`SweepPoint::stats`] report the *actual* ILP effort
//! spent (the failed attempt's stats for a greedy fallback), never zeros.
//!
//! # Fault containment
//!
//! A production server earns its throughput numbers under failure, so
//! every failure domain here is contained to the request batch it hit:
//!
//! * **Panic isolation.**  Each batch's session build and each job's solve
//!   run under `catch_unwind`; a panic becomes
//!   [`ServeError::SolverPanicked`] for the panicking job and the rest of
//!   its coalesced batch, never process death.  The cache entry the batch
//!   held is **quarantined** — a half-mutated [`PlacementSession`] must
//!   never be reused — and its queued jobs move to a freshly built entry
//!   for the same key.  Sessions are pure functions of `(program, device,
//!   scope)`, so the rebuild answers bit-identically; re-submitting a
//!   panicked request yields the exact answer.
//! * **Poison recovery.**  Locks are never `expect`ed.  A poisoned state
//!   mutex is cleared and the state checked for structural consistency: a
//!   consistent state (the panic struck outside a bookkeeping mutation)
//!   simply continues; an inconsistent one transitions the server to a
//!   terminal **draining** state that fails every pending ticket with
//!   [`ServeError::Shutdown`] — zero leaked tickets either way.
//! * **Watchdog.**  With [`ServerConfig::watchdog`] set, a monitor thread
//!   checks each worker's heartbeat (stamped at batch start and before
//!   every job).  A worker busy past the deadline is presumed wedged: its
//!   in-flight jobs are failed with [`ServeError::SolverPanicked`], its
//!   entry quarantined, the batch marked abandoned (so a late finish by
//!   the old thread cannot double-count), and a replacement worker thread
//!   spawned — [`ServerStats::worker_restarts`] counts these.
//!
//! The deterministic fault-injection failpoints that exercise all of this
//! live behind the `fault-injection` cargo feature (see
//! `flashram_ilp::fault` when enabled); release builds carry none of it.
//!
//! [`GreedySolver`]: flashram_ilp::GreedySolver
//! [`PlacementSession`]: flashram_core::PlacementSession
//! [`PlacementSession::reset_chain`]: flashram_core::PlacementSession::reset_chain
//! [`PlacementSession::solve_point_degraded`]: flashram_core::PlacementSession::solve_point_degraded
//! [`SweepPoint::stats`]: flashram_core::SweepPoint

use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use flashram_core::{
    OptimizeError, OptimizerConfig, PlacementSession, PointResolution, SweepPoint,
};
use flashram_device::DEVICE_DB;
#[cfg(feature = "fault-injection")]
use flashram_ilp::fault::{self, FaultPlan, FaultSite};
use flashram_ilp::SolveError;
use flashram_ir::MachineProgram;
use flashram_mcu::Board;

use crate::cache::{CacheStats, EntryId, EntryState, MemoEntry, SessionCache, SessionKey};
use crate::request::{Outcome, Query, Request, Response, ServeError};

/// Configuration for [`PlacementServer::new`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads solving placements.
    pub workers: usize,
    /// Admission-queue bound: at most this many jobs queued (not yet
    /// claimed by a worker).  [`PlacementServer::submit`] blocks while
    /// full; [`PlacementServer::try_submit`] returns
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Maximum cached sessions (see [`SessionCache`]).
    pub cache_capacity: usize,
    /// Branch-and-bound node budget per point; exhausting it degrades the
    /// response to [`Outcome::Heuristic`] deterministically.  `None` uses
    /// the solver default.
    pub max_ilp_nodes: Option<usize>,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Program content fingerprint for [`SessionKey`]s.  Pluggable so
    /// tests can force collisions; collisions are always survivable (the
    /// cache compares full contents), only slower.
    pub fingerprint: fn(&MachineProgram) -> u64,
    /// When set, each worker sleeps a seeded pseudo-random few hundred
    /// microseconds before claiming work, perturbing the schedule
    /// reproducibly.  The concurrency-equivalence tests sweep this seed to
    /// exercise many interleavings.
    pub worker_jitter_seed: Option<u64>,
    /// When set, a monitor thread watches each worker's heartbeat and
    /// treats a worker that has been busy on one batch without progress
    /// for longer than this deadline as wedged: its in-flight jobs are
    /// failed, its cache entry quarantined, and the worker respawned (see
    /// the module docs).  `None` (the default) runs no monitor thread.
    /// Pick a deadline comfortably above the slowest expected single
    /// solve — heartbeats are stamped per job, not per simplex pivot.
    pub watchdog: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(1),
            queue_capacity: 64,
            cache_capacity: 8,
            max_ilp_nodes: None,
            default_deadline: None,
            fingerprint: MachineProgram::content_fingerprint,
            worker_jitter_seed: None,
            watchdog: None,
        }
    }
}

/// Monotone server counters (a snapshot; see [`PlacementServer::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Responses delivered (successes and errors alike).
    pub completed: u64,
    /// Responses that were errors ([`ServeError`]).
    pub errors: u64,
    /// Responses tagged [`Outcome::Exact`].
    pub exact: u64,
    /// Responses tagged [`Outcome::Heuristic`].
    pub heuristic: u64,
    /// Responses tagged [`Outcome::Timeout`].
    pub timeout: u64,
    /// Admissions that found their session already cached.
    pub session_hits: u64,
    /// Admissions that created a new session entry.
    pub session_misses: u64,
    /// Responses answered from a session's memo table without solving.
    pub memo_hits: u64,
    /// Panics contained by the per-batch isolation, plus any worker thread
    /// found dead at join time (a panic that escaped containment).
    pub worker_panics: u64,
    /// Worker threads the watchdog presumed wedged and respawned.
    pub worker_restarts: u64,
    /// The session cache's own counters.
    pub cache: CacheStats,
    /// Jobs currently queued (admitted, not yet drained by a worker).
    pub queued: usize,
    /// Whether the server fell into the terminal draining state after an
    /// unrecoverable internal inconsistency (see the module docs).  All
    /// pending tickets were failed with [`ServeError::Shutdown`] and new
    /// admissions are refused.
    pub draining: bool,
}

struct Job {
    query: Query,
    deadline: Option<Instant>,
    enqueued: Instant,
    session_hit: bool,
    tx: mpsc::Sender<Result<Response, ServeError>>,
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    errors: u64,
    exact: u64,
    heuristic: u64,
    timeout: u64,
    session_hits: u64,
    session_misses: u64,
    memo_hits: u64,
    worker_panics: u64,
    worker_restarts: u64,
}

/// The senders of a batch a worker is currently solving, kept so the
/// watchdog (or a drain) can fail the jobs without the worker's help.  A
/// send on a channel whose job the worker later also answers is harmless:
/// the ticket takes the first message.
struct InflightBatch {
    entry: EntryId,
    senders: Vec<mpsc::Sender<Result<Response, ServeError>>>,
}

struct State {
    cache: SessionCache,
    registry: HashMap<String, (Arc<MachineProgram>, u64)>,
    pending: HashMap<EntryId, Vec<Job>>,
    ready: VecDeque<EntryId>,
    in_ready: HashSet<EntryId>,
    queued: usize,
    shutdown: bool,
    /// Terminal: the server hit an unrecoverable internal inconsistency,
    /// failed everything pending, and refuses new work (module docs).
    draining: bool,
    /// Batches currently being solved, keyed by batch id.
    inflight: HashMap<u64, InflightBatch>,
    /// Batch ids whose jobs were already failed by the watchdog or a
    /// drain; the (possibly still running) worker must not tally or
    /// release them on completion.
    abandoned: HashSet<u64>,
    /// Next batch id (starts at 1 — 0 means "idle" in a worker slot).
    next_batch: u64,
    counters: Counters,
}

/// One worker incarnation's liveness record.  The watchdog replaces the
/// whole slot on respawn, so a retired thread can never stamp the
/// replacement's heartbeat.
struct WorkerSlot {
    index: usize,
    /// Set by the watchdog; the thread exits at the next loop top (or
    /// right after discovering its batch was abandoned).
    retired: AtomicBool,
    /// The batch id being solved, 0 while idle.
    busy_batch: AtomicU64,
    /// Last heartbeat, in milliseconds since [`Shared::epoch`].
    beat_ms: AtomicU64,
}

impl WorkerSlot {
    fn new(index: usize) -> WorkerSlot {
        WorkerSlot {
            index,
            retired: AtomicBool::new(false),
            busy_batch: AtomicU64::new(0),
            beat_ms: AtomicU64::new(0),
        }
    }
}

struct Shared {
    cfg: ServerConfig,
    state: Mutex<State>,
    /// Signaled when `ready` gains an entry or shutdown begins.
    work: Condvar,
    /// Signaled when queue slots free up.
    space: Condvar,
    /// Zero point of every heartbeat timestamp.
    epoch: Instant,
    /// One slot per worker index, swapped on watchdog respawn.
    slots: Mutex<Vec<Arc<WorkerSlot>>>,
    /// Join handles by worker index; a respawn drops the wedged thread's
    /// handle (detaching it — joining a wedged thread would hang
    /// shutdown).
    handles: Mutex<Vec<Option<JoinHandle<()>>>>,
    #[cfg(feature = "fault-injection")]
    fault: Option<FaultPlan>,
}

/// Lock a bookkeeping-only mutex (slots, handles).  These are held for
/// pure reads/writes of plain data — a poisoning panic cannot leave them
/// inconsistent, so recovery is just taking the guard.
fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Lock the server state with poison recovery (module docs): a
    /// poisoned guard is cleared and the state either continues (still
    /// structurally consistent) or drains (fails everything pending and
    /// goes terminal).  Never panics.
    fn lock_state(&self) -> MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(st) => st,
            Err(poisoned) => {
                self.state.clear_poison();
                let mut st = poisoned.into_inner();
                self.recover(&mut st);
                st
            }
        }
    }

    /// [`Condvar::wait`] on `work` with the same poison recovery.
    fn wait_work<'a>(&'a self, guard: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        match self.work.wait(guard) {
            Ok(st) => st,
            Err(poisoned) => {
                self.state.clear_poison();
                let mut st = poisoned.into_inner();
                self.recover(&mut st);
                st
            }
        }
    }

    /// [`Condvar::wait`] on `space` with the same poison recovery.
    fn wait_space<'a>(&'a self, guard: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        match self.space.wait(guard) {
            Ok(st) => st,
            Err(poisoned) => {
                self.state.clear_poison();
                let mut st = poisoned.into_inner();
                self.recover(&mut st);
                st
            }
        }
    }

    /// Post-poison triage: keep a consistent state, drain a broken one.
    fn recover(&self, st: &mut State) {
        if state_consistent(st) {
            return;
        }
        drain_state(st);
        self.work.notify_all();
        self.space.notify_all();
    }
}

/// Whether the bookkeeping invariants hold — the panic that poisoned the
/// lock struck outside any state mutation.
fn state_consistent(st: &State) -> bool {
    let pending_total: usize = st.pending.values().map(Vec::len).sum();
    if st.queued != pending_total {
        return false;
    }
    if st.in_ready.len() != st.ready.len() {
        return false;
    }
    for id in &st.ready {
        if !st.in_ready.contains(id) || !st.cache.contains(*id) || st.cache.is_claimed(*id) {
            return false;
        }
    }
    if !st.pending.keys().all(|id| st.cache.contains(*id)) {
        return false;
    }
    st.cache.validate().is_ok()
}

/// The terminal transition: fail every pending ticket and every in-flight
/// batch with [`ServeError::Shutdown`], zero the queue, and refuse new
/// work.  Counters stay exact (`completed` covers everything failed here),
/// so the zero-leak guarantee `completed == submitted` holds even on this
/// path.
fn drain_state(st: &mut State) {
    st.shutdown = true;
    st.draining = true;
    for (_, jobs) in std::mem::take(&mut st.pending) {
        for job in jobs {
            st.counters.completed += 1;
            st.counters.errors += 1;
            let _ = job.tx.send(Err(ServeError::Shutdown));
        }
    }
    for (batch_id, batch) in std::mem::take(&mut st.inflight) {
        st.abandoned.insert(batch_id);
        for tx in batch.senders {
            st.counters.completed += 1;
            st.counters.errors += 1;
            let _ = tx.send(Err(ServeError::Shutdown));
        }
    }
    st.queued = 0;
    st.ready.clear();
    st.in_ready.clear();
    st.cache.clear_pins();
}

/// A pending response: returned by [`PlacementServer::submit`], redeemed
/// with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response, ServeError>>,
}

impl Ticket {
    /// Block until the server answers.  A ticket whose channel died
    /// without an answer (a worker dropped it mid-shutdown) resolves to
    /// [`ServeError::Shutdown`] — tickets never hang and never leak.
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }
}

/// The long-running placement service (see the module docs).
///
/// Dropping the server shuts it down gracefully: no new admissions, every
/// already-admitted job is still solved and answered, workers joined.
/// [`PlacementServer::shutdown`] does the same and returns the final
/// counters; both routes share one idempotent teardown.
pub struct PlacementServer {
    shared: Arc<Shared>,
    monitor: Option<JoinHandle<()>>,
    finished: bool,
}

impl std::fmt::Debug for PlacementServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlacementServer")
            .field("workers", &self.shared.cfg.workers.max(1))
            .finish_non_exhaustive()
    }
}

impl PlacementServer {
    /// Start the server: spawns `config.workers` solver threads (plus the
    /// watchdog monitor when [`ServerConfig::watchdog`] is set).
    pub fn new(config: ServerConfig) -> PlacementServer {
        PlacementServer::launch(
            config,
            #[cfg(feature = "fault-injection")]
            None,
        )
    }

    /// Start the server with a fault plan: worker threads install it
    /// thread-locally, so every failpoint they reach (across serve, core
    /// and ilp) consults this plan.  Threads outside the server — the
    /// chaos harness's sequential oracle in particular — see no faults.
    #[cfg(feature = "fault-injection")]
    pub fn with_fault_plan(config: ServerConfig, plan: FaultPlan) -> PlacementServer {
        PlacementServer::launch(config, Some(plan))
    }

    fn launch(
        config: ServerConfig,
        #[cfg(feature = "fault-injection")] plan: Option<FaultPlan>,
    ) -> PlacementServer {
        let shared = Arc::new(Shared {
            cfg: config,
            state: Mutex::new(State {
                cache: SessionCache::new(config.cache_capacity),
                registry: HashMap::new(),
                pending: HashMap::new(),
                ready: VecDeque::new(),
                in_ready: HashSet::new(),
                queued: 0,
                shutdown: false,
                draining: false,
                inflight: HashMap::new(),
                abandoned: HashSet::new(),
                next_batch: 1,
                counters: Counters::default(),
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            epoch: Instant::now(),
            slots: Mutex::new(Vec::new()),
            handles: Mutex::new(Vec::new()),
            #[cfg(feature = "fault-injection")]
            fault: plan,
        });
        for index in 0..config.workers.max(1) {
            spawn_worker(&shared, Arc::new(WorkerSlot::new(index)));
        }
        let monitor = config.watchdog.map(|deadline| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("placement-watchdog".to_string())
                .spawn(move || monitor_loop(&shared, deadline))
                .expect("spawning the watchdog thread")
        });
        PlacementServer {
            shared,
            monitor,
            finished: false,
        }
    }

    /// Register (or re-register) `name`.  Re-registering with different
    /// contents changes the content fingerprint, so cached sessions of the
    /// old contents can never answer for the new ones (and vice versa —
    /// requests already admitted against the old contents still resolve
    /// against them).
    pub fn register_program(&self, name: &str, program: Arc<MachineProgram>) {
        let fp = (self.shared.cfg.fingerprint)(&program);
        let mut st = self.shared.lock_state();
        st.registry.insert(name.to_string(), (program, fp));
    }

    /// Admit a request, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownProgram`] / [`ServeError::UnknownDevice`] for
    /// unresolvable names, [`ServeError::Shutdown`] after shutdown.
    pub fn submit(&self, req: Request) -> Result<Ticket, ServeError> {
        self.enqueue(req, true)
    }

    /// Admit a request without blocking.
    ///
    /// # Errors
    ///
    /// As [`PlacementServer::submit`], plus [`ServeError::Overloaded`]
    /// when the queue is full (the backpressure signal).
    pub fn try_submit(&self, req: Request) -> Result<Ticket, ServeError> {
        self.enqueue(req, false)
    }

    /// Submit and wait: the synchronous convenience wrapper.
    ///
    /// # Errors
    ///
    /// Everything [`PlacementServer::submit`] and the solve itself can
    /// produce.
    pub fn solve(&self, req: Request) -> Result<Response, ServeError> {
        self.submit(req)?.wait()
    }

    /// A snapshot of the server counters.
    pub fn stats(&self) -> ServerStats {
        let st = self.shared.lock_state();
        ServerStats {
            submitted: st.counters.submitted,
            completed: st.counters.completed,
            errors: st.counters.errors,
            exact: st.counters.exact,
            heuristic: st.counters.heuristic,
            timeout: st.counters.timeout,
            session_hits: st.counters.session_hits,
            session_misses: st.counters.session_misses,
            memo_hits: st.counters.memo_hits,
            worker_panics: st.counters.worker_panics,
            worker_restarts: st.counters.worker_restarts,
            cache: st.cache.stats(),
            queued: st.queued,
            draining: st.draining,
        }
    }

    /// Structural consistency check of the session cache under the server
    /// lock.  The chaos harness calls this after a fault-heavy soak to
    /// assert the cache stayed coherent through quarantines, forced
    /// evictions and worker restarts.
    ///
    /// # Errors
    ///
    /// A description of the first inconsistency found.
    pub fn verify_cache(&self) -> Result<(), String> {
        self.shared.lock_state().cache.validate()
    }

    /// Stop admitting, drain every queued job, join the workers, and
    /// return the final counters.  Zero-leak guarantee: on return,
    /// `stats.completed == stats.submitted`.
    pub fn shutdown(mut self) -> ServerStats {
        self.shutdown_impl();
        self.stats()
    }

    /// The idempotent teardown shared by [`PlacementServer::shutdown`] and
    /// `Drop`.  Worker panics discovered at join time are recorded in
    /// [`ServerStats::worker_panics`], never swallowed; a final sweep
    /// fails anything a dead worker left behind so `completed ==
    /// submitted` holds on every path.
    fn shutdown_impl(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.begin_shutdown();
        // The monitor first: once it exits no further respawn can race the
        // handle drain below.
        if let Some(monitor) = self.monitor.take() {
            let _ = monitor.join();
        }
        let handles: Vec<JoinHandle<()>> =
            relock(&self.shared.handles).drain(..).flatten().collect();
        let mut panicked_workers = 0u64;
        for handle in handles {
            if handle.join().is_err() {
                panicked_workers += 1;
            }
        }
        let mut st = self.shared.lock_state();
        st.counters.worker_panics += panicked_workers;
        // Final sweep: a worker that died outside containment may have
        // left queued or in-flight jobs behind.  Fail them all — their
        // tickets resolve to Shutdown (some already did, via their dropped
        // senders) — and reconcile the counters so the zero-leak guarantee
        // holds even after an uncontained death.
        if !st.pending.is_empty() || !st.inflight.is_empty() {
            drain_state(&mut st);
        }
        if st.counters.completed < st.counters.submitted {
            let lost = st.counters.submitted - st.counters.completed;
            st.counters.completed += lost;
            st.counters.errors += lost;
        }
    }

    fn begin_shutdown(&self) {
        let mut st = self.shared.lock_state();
        st.shutdown = true;
        self.shared.work.notify_all();
        self.shared.space.notify_all();
    }

    fn enqueue(&self, req: Request, block: bool) -> Result<Ticket, ServeError> {
        let device = DEVICE_DB
            .get(&req.device)
            .ok_or_else(|| ServeError::UnknownDevice(req.device.clone()))?;
        let mut st = self.shared.lock_state();
        loop {
            if st.shutdown {
                return Err(ServeError::Shutdown);
            }
            if st.queued < self.shared.cfg.queue_capacity {
                break;
            }
            if !block {
                return Err(ServeError::Overloaded);
            }
            st = self.shared.wait_space(st);
        }
        let (program, fingerprint) = st
            .registry
            .get(&req.program)
            .cloned()
            .ok_or_else(|| ServeError::UnknownProgram(req.program.clone()))?;
        let key = SessionKey {
            fingerprint,
            device: device.key,
            scope: req.scope,
        };
        let (id, session_hit) = st.cache.lookup_or_insert(key, &program);
        st.cache.pin(id);
        if session_hit {
            st.counters.session_hits += 1;
        } else {
            st.counters.session_misses += 1;
        }
        let now = Instant::now();
        let deadline = req
            .deadline
            .or(self.shared.cfg.default_deadline)
            .map(|d| now + d);
        let (tx, rx) = mpsc::channel();
        st.pending.entry(id).or_default().push(Job {
            query: req.query,
            deadline,
            enqueued: now,
            session_hit,
            tx,
        });
        st.queued += 1;
        st.counters.submitted += 1;
        if !st.in_ready.contains(&id) && !st.cache.is_claimed(id) {
            st.ready.push_back(id);
            st.in_ready.insert(id);
            self.shared.work.notify_one();
        }
        Ok(Ticket { rx })
    }
}

impl Drop for PlacementServer {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Register a worker thread for `slot.index`, replacing any previous
/// incarnation's slot and handle (the replaced handle is dropped, i.e. the
/// old thread is detached — joining a wedged thread would hang).
fn spawn_worker(shared: &Arc<Shared>, slot: Arc<WorkerSlot>) {
    let index = slot.index;
    let handle = {
        let shared = Arc::clone(shared);
        let slot = Arc::clone(&slot);
        std::thread::Builder::new()
            .name(format!("placement-worker-{index}"))
            .spawn(move || worker_loop(&shared, &slot))
            .expect("spawning a worker thread")
    };
    let mut slots = relock(&shared.slots);
    let mut handles = relock(&shared.handles);
    if index < slots.len() {
        slots[index] = slot;
        handles[index] = Some(handle);
    } else {
        slots.push(slot);
        handles.push(Some(handle));
    }
}

/// The watchdog: poll worker heartbeats; presume a worker wedged once it
/// has been busy on one batch past `deadline` without a heartbeat, fail
/// its in-flight jobs, quarantine its entry, and respawn it.
fn monitor_loop(shared: &Arc<Shared>, deadline: Duration) {
    let poll = (deadline / 4).clamp(Duration::from_millis(5), Duration::from_secs(1));
    let deadline_ms = deadline.as_millis().max(1) as u64;
    loop {
        std::thread::sleep(poll);
        if shared.lock_state().shutdown {
            return;
        }
        let slots: Vec<Arc<WorkerSlot>> = relock(&shared.slots).clone();
        for slot in slots {
            let batch = slot.busy_batch.load(Ordering::Acquire);
            if batch == 0
                || shared
                    .now_ms()
                    .saturating_sub(slot.beat_ms.load(Ordering::Acquire))
                    <= deadline_ms
            {
                continue;
            }
            let mut st = shared.lock_state();
            // Re-verify under the lock: the worker may have finished (or
            // progressed) between the unlocked read and here.
            if slot.busy_batch.load(Ordering::Acquire) != batch
                || shared
                    .now_ms()
                    .saturating_sub(slot.beat_ms.load(Ordering::Acquire))
                    <= deadline_ms
            {
                continue;
            }
            let Some(wedged) = st.inflight.remove(&batch) else {
                continue;
            };
            let message = format!(
                "worker {} made no progress for {deadline_ms}ms mid-batch; presumed wedged, \
                 its in-flight jobs failed and the worker respawned",
                slot.index
            );
            for tx in &wedged.senders {
                st.counters.completed += 1;
                st.counters.errors += 1;
                let _ = tx.send(Err(ServeError::SolverPanicked {
                    message: message.clone(),
                }));
            }
            st.abandoned.insert(batch);
            quarantine_and_rehome(shared, &mut st, wedged.entry);
            st.counters.worker_restarts += 1;
            slot.retired.store(true, Ordering::Release);
            drop(st);
            spawn_worker(shared, Arc::new(WorkerSlot::new(slot.index)));
            shared.work.notify_all();
        }
    }
}

/// Quarantine `id` (its session can no longer be trusted) and move its
/// queued jobs to a freshly built entry for the same key.  Purity makes
/// this invisible to correctness: the rebuilt session answers the moved
/// jobs bit-identically.
fn quarantine_and_rehome(shared: &Shared, st: &mut State, id: EntryId) {
    let Some((key, program)) = st.cache.quarantine(id) else {
        return;
    };
    st.ready.retain(|&r| r != id);
    st.in_ready.remove(&id);
    if let Some(jobs) = st.pending.remove(&id) {
        let (new_id, _) = st.cache.lookup_or_insert(key, &program);
        for _ in 0..jobs.len() {
            st.cache.pin(new_id);
        }
        st.pending.entry(new_id).or_default().extend(jobs);
        if !st.in_ready.contains(&new_id) && !st.cache.is_claimed(new_id) {
            st.ready.push_back(new_id);
            st.in_ready.insert(new_id);
            shared.work.notify_one();
        }
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn worker_loop(shared: &Shared, slot: &WorkerSlot) {
    #[cfg(feature = "fault-injection")]
    let _fault_guard = shared.fault.clone().map(fault::install);
    let mut jitter = shared
        .cfg
        .worker_jitter_seed
        .map(|seed| seed ^ (slot.index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    loop {
        if slot.retired.load(Ordering::Acquire) {
            return;
        }
        if let Some(state) = jitter.as_mut() {
            std::thread::sleep(Duration::from_micros(xorshift(state) % 300));
        }
        let mut st = shared.lock_state();
        let id = loop {
            if slot.retired.load(Ordering::Acquire) {
                return;
            }
            if let Some(id) = st.ready.pop_front() {
                break id;
            }
            if st.shutdown {
                return;
            }
            st = shared.wait_work(st);
        };
        st.in_ready.remove(&id);
        let Some((program, mut state)) = st.cache.claim(id) else {
            // Only reachable after a poison repair left a stale ready
            // entry; nothing to do.
            continue;
        };
        let jobs = st.pending.remove(&id).unwrap_or_default();
        let key = st.cache.key_of(id);
        st.cache.unpin(id, jobs.len());
        st.queued = st.queued.saturating_sub(jobs.len());
        if jobs.is_empty() {
            st.cache.release(id, state);
            continue;
        }
        let batch_id = st.next_batch;
        st.next_batch += 1;
        st.inflight.insert(
            batch_id,
            InflightBatch {
                entry: id,
                senders: jobs.iter().map(|job| job.tx.clone()).collect(),
            },
        );
        shared.space.notify_all();
        drop(st);

        slot.beat_ms.store(shared.now_ms(), Ordering::Release);
        slot.busy_batch.store(batch_id, Ordering::Release);
        #[cfg(feature = "fault-injection")]
        if fault::should_fire(FaultSite::ServeCoalesceDelay) {
            if let Some(delay) = fault::injected_delay() {
                std::thread::sleep(delay);
            }
        }
        let batch = solve_batch(&shared.cfg, key, &program, &mut state, jobs, &|| {
            slot.beat_ms.store(shared.now_ms(), Ordering::Release);
        });
        slot.busy_batch.store(0, Ordering::Release);

        let mut st = shared.lock_state();
        st.inflight.remove(&batch_id);
        if st.abandoned.remove(&batch_id) {
            // The watchdog (or a drain) already failed these jobs and
            // quarantined the entry; dropping `state` here is the point —
            // the half-trusted session must not rejoin the cache, and the
            // tallies were already accounted.
            continue;
        }
        st.counters.completed += batch.completed;
        st.counters.errors += batch.errors;
        st.counters.exact += batch.exact;
        st.counters.heuristic += batch.heuristic;
        st.counters.timeout += batch.timeout;
        st.counters.memo_hits += batch.memo_hits;
        if batch.panicked.is_some() {
            st.counters.worker_panics += 1;
            quarantine_and_rehome(shared, &mut st, id);
        } else {
            st.cache.release(id, state);
            if st.pending.contains_key(&id) && !st.in_ready.contains(&id) {
                st.ready.push_back(id);
                st.in_ready.insert(id);
                shared.work.notify_one();
            }
        }
        #[cfg(feature = "fault-injection")]
        if fault::should_fire(FaultSite::ServeEvictRace) {
            st.cache.evict_one_idle();
        }
    }
}

#[derive(Default)]
struct BatchTally {
    completed: u64,
    errors: u64,
    exact: u64,
    heuristic: u64,
    timeout: u64,
    memo_hits: u64,
    /// The panic message, when a panic escaped the session build or a
    /// job's solve.  The batch was aborted: the remaining jobs were failed
    /// with [`ServeError::SolverPanicked`] and the caller must quarantine
    /// the entry instead of releasing the (half-mutated) state.
    panicked: Option<String>,
}

/// Extract a human-readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f` with panics contained: `Err(message)` instead of unwinding.
/// `AssertUnwindSafe` is sound here because every caller discards the
/// state `f` may have half-mutated (the entry is quarantined, never
/// released).
fn contain<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(panic_message)
}

/// Fail every remaining job of an aborted batch with
/// [`ServeError::SolverPanicked`].
fn abort_batch(tally: &mut BatchTally, jobs: impl Iterator<Item = Job>, message: &str) {
    for job in jobs {
        tally.completed += 1;
        tally.errors += 1;
        let _ = job.tx.send(Err(ServeError::SolverPanicked {
            message: message.to_string(),
        }));
    }
}

/// Solve one coalesced batch of jobs against one session, sending each
/// job's response as it completes.  `beat` is stamped before every job —
/// the worker's heartbeat for the watchdog.  Panics in the session build
/// or any job's solve are contained (see [`BatchTally::panicked`]).
fn solve_batch(
    cfg: &ServerConfig,
    key: SessionKey,
    program: &Arc<MachineProgram>,
    state: &mut EntryState,
    jobs: Vec<Job>,
    beat: &dyn Fn(),
) -> BatchTally {
    let mut tally = BatchTally::default();
    let mut jobs = jobs.into_iter();
    let setup = contain(|| {
        #[cfg(feature = "fault-injection")]
        if fault::should_fire(FaultSite::ServeClaimPanic) {
            panic!("{} worker panic at batch claim", fault::INJECTED_MARKER);
        }
        if state.session.is_none() {
            build_session(cfg, key, program, state)
        } else {
            Ok(())
        }
    });
    match setup {
        Err(message) => {
            abort_batch(&mut tally, jobs, &message);
            tally.panicked = Some(message);
            return tally;
        }
        Ok(Err(e)) => {
            for job in jobs {
                tally.completed += 1;
                tally.errors += 1;
                let _ = job.tx.send(Err(e.clone()));
            }
            return tally;
        }
        Ok(Ok(())) => {}
    }
    while let Some(job) = jobs.next() {
        beat();
        let started = Instant::now();
        let queue_ms = started.duration_since(job.enqueued).as_secs_f64() * 1e3;
        tally.completed += 1;
        let memo_key = job.query.memo_key();
        if let Some(memo) = state.memo.get(&memo_key) {
            tally.memo_hits += 1;
            tally_outcome(&mut tally, memo.outcome);
            let _ = job.tx.send(Ok(Response {
                outcome: memo.outcome,
                points: memo.points.clone(),
                session_hit: job.session_hit,
                memo_hit: true,
                queue_ms,
                solve_ms: 0.0,
                injected: false,
            }));
            continue;
        }
        let session = state.session.as_mut().expect("session built above");
        let solved = contain(|| solve_query(session, &job.query, job.deadline));
        let solve_ms = started.elapsed().as_secs_f64() * 1e3;
        match solved {
            Err(message) => {
                tally.errors += 1;
                let _ = job.tx.send(Err(ServeError::SolverPanicked {
                    message: message.clone(),
                }));
                abort_batch(&mut tally, jobs, &message);
                tally.panicked = Some(message);
                return tally;
            }
            Ok(Ok((outcome, points))) => {
                // An injected-fault-degraded answer is not the pure
                // function of the request the memo contract requires.
                let injected = points.iter().any(|p| p.stats.injected);
                if outcome != Outcome::Timeout && !injected {
                    state.memo.insert(
                        memo_key,
                        MemoEntry {
                            outcome,
                            points: points.clone(),
                        },
                    );
                }
                tally_outcome(&mut tally, outcome);
                let _ = job.tx.send(Ok(Response {
                    outcome,
                    points,
                    session_hit: job.session_hit,
                    memo_hit: false,
                    queue_ms,
                    solve_ms,
                    injected,
                }));
            }
            Ok(Err(e)) => {
                tally.errors += 1;
                let _ = job.tx.send(Err(e));
            }
        }
    }
    tally
}

fn tally_outcome(tally: &mut BatchTally, outcome: Outcome) {
    match outcome {
        Outcome::Exact => tally.exact += 1,
        Outcome::Heuristic => tally.heuristic += 1,
        Outcome::Timeout => tally.timeout += 1,
    }
}

fn build_session(
    cfg: &ServerConfig,
    key: SessionKey,
    program: &Arc<MachineProgram>,
    state: &mut EntryState,
) -> Result<(), ServeError> {
    let desc = DEVICE_DB.get(key.device).expect("validated at admission");
    let board = Board::new(desc);
    let config = OptimizerConfig {
        scope: key.scope,
        max_ilp_nodes: cfg.max_ilp_nodes,
        ..OptimizerConfig::default()
    };
    match PlacementSession::new(program, &board, &config) {
        Ok(session) => {
            state.session = Some(session);
            Ok(())
        }
        Err(OptimizeError::DoesNotFit(why)) => Err(ServeError::DoesNotFit(why)),
        Err(OptimizeError::Solver(e)) => Err(ServeError::Solver(e)),
    }
}

/// The remaining wall-clock budget; `Some(ZERO)` once expired, which the
/// branch-and-bound treats as "degrade immediately".
fn remaining(deadline: Option<Instant>) -> Option<Duration> {
    deadline.map(|d| d.saturating_duration_since(Instant::now()))
}

fn point_outcome(resolution: PointResolution, timed_out: bool) -> Outcome {
    match resolution {
        PointResolution::Exact => Outcome::Exact,
        _ if timed_out => Outcome::Timeout,
        _ => Outcome::Heuristic,
    }
}

pub(crate) fn solve_query(
    session: &mut PlacementSession,
    query: &Query,
    deadline: Option<Instant>,
) -> Result<(Outcome, Vec<SweepPoint>), ServeError> {
    // Purity: every query starts from a reset chain, so the answer cannot
    // depend on what this session solved before (module docs).
    session.reset_chain();
    let result = match query {
        Query::Point { r_spare, x_limit } => {
            session.solver.time_limit = remaining(deadline);
            let solved = session.solve_point_degraded(*r_spare, *x_limit)?;
            let outcome = point_outcome(solved.resolution, solved.point.stats.time_limit_hit);
            Ok((outcome, vec![solved.point]))
        }
        Query::Sweep { budgets, x_limit } => {
            // The coalesced sweep: one chained solve_chained run in request
            // order (solve_point_degraded chains across these calls because
            // the chain is only reset once, above).
            let mut outcome = Outcome::Exact;
            let mut points = Vec::with_capacity(budgets.len());
            for &budget in budgets {
                session.solver.time_limit = remaining(deadline);
                let solved = session.solve_point_degraded(budget, *x_limit)?;
                let this = point_outcome(solved.resolution, solved.point.stats.time_limit_hit);
                outcome = worst_outcome(outcome, this);
                points.push(solved.point);
            }
            Ok((outcome, points))
        }
        Query::Frontier {
            x_limit,
            max_budget,
        } => {
            session.solver.time_limit = remaining(deadline);
            match session.enumerate_frontier(*x_limit, *max_budget) {
                Ok(frontier) => {
                    let timed = frontier.points.iter().any(|p| p.stats.time_limit_hit);
                    let outcome = if timed {
                        Outcome::Timeout
                    } else if frontier.exact {
                        Outcome::Exact
                    } else {
                        Outcome::Heuristic
                    };
                    Ok((outcome, frontier.points))
                }
                Err(SolveError::BudgetExhausted(why)) => {
                    // The enumeration ran out of nodes or time with no
                    // incumbent at some step: collapse to the best-effort
                    // single point at the full budget.
                    session.reset_chain();
                    session.solver.time_limit = remaining(deadline);
                    let mut solved = session.solve_point_degraded(*max_budget, *x_limit)?;
                    // A frontier collapsed by an *injected* exhaustion
                    // must carry the taint even when the fallback point
                    // itself solved cleanly.
                    if cfg!(feature = "fault-injection") && why.contains("injected fault") {
                        solved.point.stats.injected = true;
                    }
                    let timed = solved.point.stats.time_limit_hit
                        || remaining(deadline).is_some_and(|r| r.is_zero());
                    let outcome = match solved.resolution {
                        PointResolution::Exact if !timed => Outcome::Heuristic,
                        resolution => point_outcome(resolution, timed),
                    };
                    Ok((outcome, vec![solved.point]))
                }
                Err(e) => Err(ServeError::Solver(e)),
            }
        }
    };
    session.solver.time_limit = None;
    result
}

fn worst_outcome(a: Outcome, b: Outcome) -> Outcome {
    use Outcome::*;
    match (a, b) {
        (Timeout, _) | (_, Timeout) => Timeout,
        (Heuristic, _) | (_, Heuristic) => Heuristic,
        _ => Exact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashram_minicc::{compile_program, OptLevel, SourceUnit};

    fn tiny_program() -> Arc<MachineProgram> {
        let src =
            "int work(int n) { int s = 0; for (int i = 0; i < n; i++) s += i * i; return s; }\n\
                   int main() { return work(10); }";
        Arc::new(compile_program(&[SourceUnit::application(src)], OptLevel::O1).unwrap())
    }

    fn small_server() -> PlacementServer {
        let server = PlacementServer::new(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        server.register_program("tiny", tiny_program());
        server
    }

    /// Poison the state mutex by panicking while holding it, optionally
    /// corrupting the bookkeeping first.
    fn poison_state(server: &PlacementServer, corrupt: bool) {
        let shared = Arc::clone(&server.shared);
        let _ = std::thread::spawn(move || {
            let mut st = shared.state.lock().unwrap();
            if corrupt {
                st.queued += 7;
            }
            panic!("poisoning the server state for the recovery test");
        })
        .join();
        assert!(server.shared.state.is_poisoned());
    }

    #[test]
    fn consistent_poison_is_repaired_and_the_server_keeps_serving() {
        let server = small_server();
        poison_state(&server, false);
        // The next lock clears the poison and, the state being consistent,
        // the server continues: a full solve round-trip still works.
        let response = server
            .solve(Request::point("tiny", "stm32f100", 64, 2.0))
            .expect("server survived the poisoned lock");
        assert!(!response.points.is_empty());
        let stats = server.shutdown();
        assert!(!stats.draining);
        assert_eq!(stats.completed, stats.submitted);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn corrupted_poison_drains_terminally_without_leaking() {
        let server = small_server();
        poison_state(&server, true);
        // The corrupted bookkeeping (queued ≠ pending) forces the terminal
        // drain: new admissions are refused...
        let err = server
            .solve(Request::point("tiny", "stm32f100", 64, 2.0))
            .expect_err("a draining server refuses work");
        assert_eq!(err, ServeError::Shutdown);
        let stats = server.stats();
        assert!(stats.draining);
        assert_eq!(stats.queued, 0);
        // ...and the zero-leak guarantee still holds at shutdown.
        let stats = server.shutdown();
        assert_eq!(stats.completed, stats.submitted);
    }

    #[test]
    fn shutdown_and_drop_share_one_idempotent_teardown() {
        let server = small_server();
        let response = server.solve(Request::point("tiny", "stm32f100", 48, 2.0));
        assert!(response.is_ok());
        // `shutdown` consumes the server; `Drop` runs right after and must
        // be a no-op (no double join, no double drain, no panic).
        let stats = server.shutdown();
        assert_eq!(stats.completed, stats.submitted);
        assert_eq!(stats.worker_panics, 0);
        assert_eq!(stats.worker_restarts, 0);
    }

    /// The `try_submit`/shutdown race, with the flag flip genuinely
    /// concurrent with the admission hammering: every admission either
    /// yields a ticket that resolves (answer or `Shutdown`) or is refused
    /// with `Shutdown`/`Overloaded` — nothing hangs, nothing leaks.
    #[test]
    fn tickets_admitted_concurrently_with_shutdown_resolve_without_leaks() {
        let server = small_server();
        let tickets = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for client in 0..3u32 {
                let server = &server;
                let tickets = &tickets;
                scope.spawn(move || {
                    for i in 0..40u32 {
                        let budget = [0u32, 32, 96][((client + i) % 3) as usize];
                        match server.try_submit(Request::point("tiny", "stm32f100", budget, 2.0)) {
                            Ok(ticket) => relock(tickets).push(ticket),
                            Err(ServeError::Shutdown) => return,
                            Err(ServeError::Overloaded) => std::thread::yield_now(),
                            Err(e) => panic!("unexpected admission error: {e}"),
                        }
                    }
                });
            }
            // Flip the flag mid-hammering: admissions racing it land on
            // either side, and both sides must stay leak-free.
            std::thread::sleep(Duration::from_millis(2));
            server.begin_shutdown();
        });
        for ticket in relock(&tickets).drain(..) {
            match ticket.wait() {
                Ok(_) | Err(ServeError::Shutdown) => {}
                Err(e) => panic!("a racing ticket resolved to {e}"),
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, stats.submitted, "zero leaked tickets");
        assert_eq!(stats.queued, 0);
    }

    #[test]
    fn contain_reports_panic_messages() {
        assert_eq!(contain(|| 3).unwrap(), 3);
        let msg = contain(|| -> () { panic!("boom {}", 7) }).unwrap_err();
        assert_eq!(msg, "boom 7");
        let msg = contain(|| -> () { std::panic::panic_any(42i32) }).unwrap_err();
        assert_eq!(msg, "non-string panic payload");
    }
}
