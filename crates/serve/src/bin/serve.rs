//! The interactive placement service: a line-oriented REPL over a
//! [`PlacementServer`] preloaded with the BEEBS suite.
//!
//! Commands (one per line on stdin):
//!
//! ```text
//! solve <kernel> <device> <r_spare> <x_limit> [deadline_ms]
//! sweep <kernel> <device> <x_limit> <budget> [budget ...]
//! frontier <kernel> <device> <x_limit> <max_budget>
//! stats
//! quit
//! ```
//!
//! Flags: `--workers N`, `--cache N`, `--opt O0..O3s` (compile level for
//! the preregistered kernels).

use std::io::BufRead;
use std::sync::Arc;
use std::time::Duration;

use flashram_beebs::Benchmark;
use flashram_core::PlacementScope;
use flashram_device::DEVICE_DB;
use flashram_minicc::OptLevel;
use flashram_serve::{PlacementServer, Query, Request, ServerConfig};

fn parse_opt_level(s: &str) -> OptLevel {
    match s {
        "O0" => OptLevel::O0,
        "O1" => OptLevel::O1,
        "O2" => OptLevel::O2,
        "O3" => OptLevel::O3,
        _ => OptLevel::O2,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let mut config = ServerConfig::default();
    if let Some(w) = flag("--workers").and_then(|v| v.parse().ok()) {
        config.workers = w;
    }
    if let Some(c) = flag("--cache").and_then(|v| v.parse().ok()) {
        config.cache_capacity = c;
    }
    let opt = parse_opt_level(&flag("--opt").unwrap_or_default());

    let server = PlacementServer::new(config);
    for bench in Benchmark::all() {
        match bench.compile_cached(opt) {
            Ok(program) => server.register_program(bench.name, Arc::clone(&program)),
            Err(e) => eprintln!("skipping {}: {e}", bench.name),
        }
    }
    println!(
        "placement service ready: {} kernels at {opt:?}, devices: {}",
        Benchmark::all().len(),
        DEVICE_DB
            .all()
            .iter()
            .map(|d| d.key)
            .collect::<Vec<_>>()
            .join(", ")
    );

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let words: Vec<&str> = line.split_whitespace().collect();
        let reply = match words.as_slice() {
            [] => continue,
            ["quit"] | ["exit"] => break,
            ["stats"] => {
                let s = server.stats();
                format!(
                    "submitted={} completed={} exact={} heuristic={} timeout={} \
                     session_hits={} memo_hits={} evictions={}",
                    s.submitted,
                    s.completed,
                    s.exact,
                    s.heuristic,
                    s.timeout,
                    s.session_hits,
                    s.memo_hits,
                    s.cache.evictions
                )
            }
            ["solve", kernel, device, r_spare, x_limit, rest @ ..] => {
                match (r_spare.parse(), x_limit.parse()) {
                    (Ok(r_spare), Ok(x_limit)) => {
                        let deadline = rest
                            .first()
                            .and_then(|ms| ms.parse().ok())
                            .map(Duration::from_millis);
                        answer(
                            &server,
                            kernel,
                            device,
                            Query::Point { r_spare, x_limit },
                            deadline,
                        )
                    }
                    _ => "parse error: solve <kernel> <device> <r_spare> <x_limit> [deadline_ms]"
                        .to_string(),
                }
            }
            ["sweep", kernel, device, x_limit, budgets @ ..] if !budgets.is_empty() => {
                match (
                    x_limit.parse(),
                    budgets.iter().map(|b| b.parse()).collect::<Result<_, _>>(),
                ) {
                    (Ok(x_limit), Ok(budgets)) => answer(
                        &server,
                        kernel,
                        device,
                        Query::Sweep { budgets, x_limit },
                        None,
                    ),
                    _ => "parse error: sweep <kernel> <device> <x_limit> <budget>...".to_string(),
                }
            }
            ["frontier", kernel, device, x_limit, max_budget] => {
                match (x_limit.parse(), max_budget.parse()) {
                    (Ok(x_limit), Ok(max_budget)) => answer(
                        &server,
                        kernel,
                        device,
                        Query::Frontier {
                            x_limit,
                            max_budget,
                        },
                        None,
                    ),
                    _ => {
                        "parse error: frontier <kernel> <device> <x_limit> <max_budget>".to_string()
                    }
                }
            }
            _ => "commands: solve | sweep | frontier | stats | quit".to_string(),
        };
        println!("{reply}");
    }
    let stats = server.shutdown();
    eprintln!(
        "served {} requests ({} exact, {} heuristic, {} timeout)",
        stats.completed, stats.exact, stats.heuristic, stats.timeout
    );
}

fn answer(
    server: &PlacementServer,
    kernel: &str,
    device: &str,
    query: Query,
    deadline: Option<Duration>,
) -> String {
    let request = Request {
        program: kernel.to_string(),
        device: device.to_string(),
        scope: PlacementScope::default(),
        query,
        deadline,
    };
    match server.solve(request) {
        Ok(response) => {
            let mut lines = vec![format!(
                "{} ({} point{}, queue {:.2} ms, solve {:.2} ms{}{})",
                response.outcome.tag(),
                response.points.len(),
                if response.points.len() == 1 { "" } else { "s" },
                response.queue_ms,
                response.solve_ms,
                if response.session_hit {
                    ", session hit"
                } else {
                    ""
                },
                if response.memo_hit { ", memo hit" } else { "" },
            )];
            for p in &response.points {
                lines.push(format!(
                    "  budget {:>5} B  x≤{:<5}  energy {:>12.2}  ram {:>5} B  {} blocks in RAM",
                    p.r_spare,
                    p.x_limit,
                    p.objective,
                    p.model_ram_used,
                    p.selected.len()
                ));
            }
            lines.join("\n")
        }
        Err(e) => format!("error: {e}"),
    }
}
