//! Seeded stress driver for the placement service: replays a synthetic
//! workload (mixed kernels, budgets, query shapes, arrival jitter) against
//! a [`PlacementServer`](flashram_serve::PlacementServer) and writes throughput / latency-percentile /
//! cache-hit / degradation-rate numbers to `BENCH_serve.json`.
//!
//! Acceptance checks (exit nonzero unless `--no-fail`):
//!
//! * zero queue leaks — every admitted request was answered;
//! * zero equivalence failures — sampled responses are bit-identical to a
//!   sequential re-solve;
//! * zero validation failures — sampled placements, simulated, still
//!   compute the baseline's answer.
//!
//! Flags: `--short` (the small CI workload), `--no-fail`, `--seed N`,
//! `--duration-s N` (soak mode), `--clients N`, `--requests N` (per
//! client), `--deadlines` (mix in tight deadlines to exercise the timeout
//! path; implies the equivalence sample skips those requests), `--out P`,
//! and `--chaos [seed=N] [rate=R]` (chaos mode: replay the workload under
//! a seeded fault schedule firing each failpoint with probability `R`,
//! e.g. `rate=0.05`; requires building with `--features fault-injection`).
//! Chaos runs additionally assert cache coherence and exclude
//! injected-degraded answers from the bit-identity sample; the report
//! gains a `chaos` section.

use std::time::Duration;

use flashram_serve::workload::{
    run_stress, stress_report_json, ChaosConfig, StressConfig, WorkloadShape,
};
use flashram_serve::ServerConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |name: &str| args.iter().any(|a| a == name);
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let no_fail = has("--no-fail");
    let seed: u64 = flag("--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20150207);
    let out = flag("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());

    let mut cfg = if has("--short") {
        StressConfig::short(seed)
    } else {
        StressConfig {
            seed,
            clients: 8,
            requests_per_client: 150,
            duration: None,
            server: ServerConfig::default(),
            shape: WorkloadShape::beebs_default(),
            opt_level: flashram_minicc::OptLevel::O2,
            validate_per_client: 4,
            chaos: None,
        }
    };
    if let Some(c) = flag("--clients").and_then(|v| v.parse().ok()) {
        cfg.clients = c;
    }
    if let Some(r) = flag("--requests").and_then(|v| v.parse().ok()) {
        cfg.requests_per_client = r;
    }
    if let Some(s) = flag("--duration-s").and_then(|v| v.parse().ok()) {
        cfg.duration = Some(Duration::from_secs(s));
    }
    if has("--deadlines") {
        cfg.shape.deadline_per_mille = 100;
    }
    if let Some(pos) = args.iter().position(|a| a == "--chaos") {
        let mut chaos = ChaosConfig {
            seed,
            rate_per_mille: 50,
        };
        // `--chaos` takes trailing key=value operands: seed=N, rate=R
        // (R a probability, e.g. 0.05).
        for kv in args[pos + 1..].iter().take_while(|a| a.contains('=')) {
            match kv.split_once('=') {
                Some(("seed", v)) => {
                    chaos.seed = v.parse().unwrap_or_else(|_| {
                        eprintln!("stress: bad chaos seed {v:?}");
                        std::process::exit(2);
                    });
                }
                Some(("rate", v)) => {
                    let rate: f64 = v.parse().unwrap_or(-1.0);
                    if !(0.0..=1.0).contains(&rate) {
                        eprintln!("stress: chaos rate must be a probability in [0, 1], got {v:?}");
                        std::process::exit(2);
                    }
                    chaos.rate_per_mille = (rate * 1000.0).round() as u16;
                }
                _ => {
                    eprintln!("stress: unknown chaos option {kv:?} (expected seed=N or rate=R)");
                    std::process::exit(2);
                }
            }
        }
        if cfg!(not(feature = "fault-injection")) {
            eprintln!("stress: --chaos requires building with --features fault-injection");
            std::process::exit(2);
        }
        cfg.chaos = Some(chaos);
    }

    eprintln!(
        "stress: seed {seed}, {} clients, {} ({} kernels × {} devices)",
        cfg.clients,
        match cfg.duration {
            Some(d) => format!("{}s soak", d.as_secs()),
            None => format!("{} requests/client", cfg.requests_per_client),
        },
        cfg.shape.kernels.len(),
        cfg.shape.devices.len()
    );
    if let Some(chaos) = cfg.chaos {
        eprintln!(
            "chaos: fault seed {}, rate {}/1000 per failpoint",
            chaos.seed, chaos.rate_per_mille
        );
    }

    let report = run_stress(&cfg);

    println!(
        "throughput {:.1} req/s over {:.1}s  latency p50/p95/p99 {:.2}/{:.2}/{:.2} ms",
        report.throughput_rps,
        report.wall_s,
        report.latency_p50_ms,
        report.latency_p95_ms,
        report.latency_p99_ms
    );
    println!(
        "session hit rate {:.1}%  memo hit rate {:.1}%  degradation rate {:.1}% \
         ({} exact / {} heuristic / {} timeout)",
        report.session_hit_rate * 100.0,
        report.memo_hit_rate * 100.0,
        report.degradation_rate * 100.0,
        report.server.exact,
        report.server.heuristic,
        report.server.timeout
    );
    println!(
        "equivalence {}/{} bit-identical  validation {}/{} placements correct",
        report.equivalence_checked - report.equivalence_failures,
        report.equivalence_checked,
        report.validated - report.validation_failures,
        report.validated
    );
    if let Some(chaos) = &report.chaos {
        let fired: u64 = chaos.sites.iter().map(|(_, _, f)| f).sum();
        println!(
            "chaos: {fired} faults fired  {} succeeded / {} failed  \
             {} quarantined  {} panics contained  {} workers restarted",
            chaos.succeeded,
            chaos.failed,
            chaos.quarantined,
            chaos.worker_panics,
            chaos.worker_restarts
        );
    }

    std::fs::write(&out, stress_report_json(&report)).expect("write BENCH_serve.json");
    println!("wrote {out}");

    if !report.failures.is_empty() {
        for f in &report.failures {
            eprintln!("FAIL: {f}");
        }
        if !no_fail {
            std::process::exit(1);
        }
        eprintln!("(--no-fail: reporting only)");
    }
}
