//! The session cache: one built [`PlacementSession`] per `(program
//! contents, device, scope)`, with LRU eviction.
//!
//! # Keying and collision safety
//!
//! Entries are indexed by [`SessionKey`] — a 64-bit content fingerprint of
//! the program plus the device key and placement scope.  The fingerprint is
//! **not trusted**: a lookup that lands on a key match still compares the
//! full program (cheap `Arc` pointer check first, deep equality second)
//! before declaring a hit, so two distinct programs whose fingerprints
//! collide coexist as separate entries under the same key.  The
//! `cache_correctness` integration tests force this path with a constant
//! fingerprint function.
//!
//! Because the key covers the program *contents* (not its registered name),
//! re-registering a name with different contents can never serve a stale
//! placement: the new contents miss the old entry by deep comparison and
//! build their own session.
//!
//! # Eviction invariants
//!
//! Eviction happens on insert, least-recently-used first, and **never**
//! touches an entry that is pinned (queued jobs reference it) or claimed (a
//! worker is solving on it).  If every entry is in use the cache grows past
//! its capacity rather than blocking — admission backpressure is the
//! server's job, not the cache's.

use std::collections::HashMap;
use std::sync::Arc;

use flashram_core::{PlacementScope, PlacementSession, SweepPoint};
use flashram_ir::MachineProgram;

use crate::request::{Outcome, QueryKey};

/// The cache key: program content fingerprint + device + scope.
///
/// The fingerprint is advisory (see the module docs); the device key is a
/// `&'static str` from the device database, so key equality is exact on
/// the other two coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionKey {
    /// Content fingerprint of the program (see
    /// [`MachineProgram::content_fingerprint`]); collisions are tolerated.
    pub fingerprint: u64,
    /// Device database key the session's board was built from.
    pub device: &'static str,
    /// The placement scope the session's model was extracted under.
    pub scope: PlacementScope,
}

/// A memoized answer for one exact query against one session.
///
/// Only deterministic outcomes are memoized ([`Outcome::Exact`] and
/// [`Outcome::Heuristic`]); a [`Outcome::Timeout`] answer depends on
/// wall-clock timing and is recomputed on every submission.
#[derive(Debug, Clone)]
pub(crate) struct MemoEntry {
    pub outcome: Outcome,
    pub points: Vec<SweepPoint>,
}

/// The per-entry solver state a worker checks out while solving.
#[derive(Debug, Default)]
pub(crate) struct EntryState {
    /// The built session; `None` until the first claiming worker builds it
    /// (building the ILP is too slow to do under the server lock).
    pub session: Option<PlacementSession>,
    /// Memoized deterministic answers, keyed by canonical query.
    pub memo: HashMap<QueryKey, MemoEntry>,
}

#[derive(Debug)]
struct CacheEntry {
    key: SessionKey,
    program: Arc<MachineProgram>,
    /// `None` while a worker has the state checked out.
    state: Option<EntryState>,
    /// Queued jobs referencing this entry; pinned entries are never evicted.
    pins: usize,
    /// LRU clock value of the last lookup or claim.
    last_used: u64,
}

/// Counters describing the cache's behavior so far (monotone).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an existing session entry for the same program
    /// contents.
    pub hits: u64,
    /// Lookups that had to create a new entry.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Lookups whose [`SessionKey`] matched an entry holding a *different*
    /// program — a fingerprint collision caught by the deep comparison.
    pub collisions: u64,
    /// Entries torn down by fault containment: a worker panicked (or was
    /// presumed wedged by the watchdog) while holding the entry's session,
    /// so the possibly half-mutated state was discarded instead of
    /// released.  Queued jobs move to a freshly built entry for the same
    /// key; sessions are pure functions of `(program, device, scope)`, so
    /// the rebuild answers identically.
    pub quarantined: u64,
}

/// Opaque handle to a cache entry.  Handles stay valid for as long as the
/// entry is pinned or claimed; the server's job bookkeeping guarantees it
/// never holds a handle to an evictable entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct EntryId(u64);

/// The LRU session cache (see the module docs for the invariants).
#[derive(Debug)]
pub struct SessionCache {
    capacity: usize,
    clock: u64,
    next_id: u64,
    entries: HashMap<EntryId, CacheEntry>,
    /// Key → entries carrying that key (more than one only under
    /// fingerprint collisions).
    index: HashMap<SessionKey, Vec<EntryId>>,
    stats: CacheStats,
}

impl SessionCache {
    /// A cache holding at most `capacity` unpinned sessions (it may
    /// transiently exceed `capacity` when every entry is in use).
    pub fn new(capacity: usize) -> SessionCache {
        SessionCache {
            capacity: capacity.max(1),
            clock: 0,
            next_id: 0,
            entries: HashMap::new(),
            index: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The monotone behavior counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Find the entry for `(key, program)` or create one, returning the
    /// handle and whether it was a hit.  The deep program comparison makes
    /// this collision- and staleness-safe (module docs).
    pub(crate) fn lookup_or_insert(
        &mut self,
        key: SessionKey,
        program: &Arc<MachineProgram>,
    ) -> (EntryId, bool) {
        let tick = self.tick();
        if let Some(ids) = self.index.get(&key) {
            let mut collided = false;
            let mut found = None;
            for &id in ids {
                let entry = &self.entries[&id];
                if Arc::ptr_eq(&entry.program, program) || entry.program == *program {
                    found = Some(id);
                    break;
                }
                collided = true;
            }
            if collided {
                self.stats.collisions += 1;
            }
            if let Some(id) = found {
                self.stats.hits += 1;
                self.entries.get_mut(&id).expect("indexed entry").last_used = tick;
                return (id, true);
            }
        }
        self.stats.misses += 1;
        self.evict_to_fit();
        let id = EntryId(self.next_id);
        self.next_id += 1;
        self.entries.insert(
            id,
            CacheEntry {
                key,
                program: Arc::clone(program),
                state: Some(EntryState::default()),
                pins: 0,
                last_used: tick,
            },
        );
        self.index.entry(key).or_default().push(id);
        (id, false)
    }

    /// Evict least-recently-used evictable entries until a new insert fits.
    fn evict_to_fit(&mut self) {
        while self.entries.len() >= self.capacity {
            let Some(id) = self.lru_idle_victim() else {
                // Everything is in use; grow past capacity instead of
                // blocking (the admission queue bounds how far).
                return;
            };
            self.remove_entry(id);
            self.stats.evictions += 1;
        }
    }

    /// The least-recently-used entry that is neither pinned nor claimed.
    fn lru_idle_victim(&self) -> Option<EntryId> {
        self.entries
            .iter()
            .filter(|(_, e)| e.pins == 0 && e.state.is_some())
            .min_by_key(|(_, e)| e.last_used)
            .map(|(&id, _)| id)
    }

    /// Remove `id` and fix the key index.  Panics if absent.
    fn remove_entry(&mut self, id: EntryId) -> CacheEntry {
        let entry = self.entries.remove(&id).expect("removed entry exists");
        let ids = self
            .index
            .get_mut(&entry.key)
            .expect("removed entry indexed");
        ids.retain(|&i| i != id);
        if ids.is_empty() {
            self.index.remove(&entry.key);
        }
        entry
    }

    /// Force-evict the LRU idle entry regardless of occupancy pressure —
    /// the fault-injection eviction-race failpoint, simulating an eviction
    /// racing the next admission for the same key.  No-op (returning
    /// `false`) when every entry is pinned or claimed.
    #[cfg(feature = "fault-injection")]
    pub(crate) fn evict_one_idle(&mut self) -> bool {
        let Some(id) = self.lru_idle_victim() else {
            return false;
        };
        self.remove_entry(id);
        self.stats.evictions += 1;
        true
    }

    /// Tear down a (possibly claimed, possibly pinned) entry whose session
    /// can no longer be trusted — a panic or watchdog kill interrupted the
    /// worker holding it mid-mutation.  Returns the key and program so the
    /// caller can rebuild a fresh entry and re-home the queued jobs.
    pub(crate) fn quarantine(&mut self, id: EntryId) -> Option<(SessionKey, Arc<MachineProgram>)> {
        if !self.entries.contains_key(&id) {
            return None;
        }
        let entry = self.remove_entry(id);
        self.stats.quarantined += 1;
        Some((entry.key, entry.program))
    }

    /// Keep `id` alive: one pin per queued job referencing the entry.
    pub(crate) fn pin(&mut self, id: EntryId) {
        self.entries.get_mut(&id).expect("pinned entry exists").pins += 1;
    }

    /// Drop `count` pins from `id` (its jobs were drained for solving).
    pub(crate) fn unpin(&mut self, id: EntryId, count: usize) {
        let entry = self.entries.get_mut(&id).expect("unpinned entry exists");
        entry.pins = entry.pins.checked_sub(count).expect("pin underflow");
    }

    /// Check the entry's solver state out for a worker.  Returns `None`
    /// when another worker already holds it (the server's ready-queue
    /// bookkeeping should make that impossible).
    pub(crate) fn claim(&mut self, id: EntryId) -> Option<(Arc<MachineProgram>, EntryState)> {
        let tick = self.tick();
        let entry = self.entries.get_mut(&id)?;
        let state = entry.state.take()?;
        entry.last_used = tick;
        Some((Arc::clone(&entry.program), state))
    }

    /// Return a claimed entry's state after solving.  Tolerates an entry
    /// that was quarantined while the worker held the state (the stale
    /// state is simply dropped — the rebuilt entry must never see it).
    pub(crate) fn release(&mut self, id: EntryId, state: EntryState) {
        let Some(entry) = self.entries.get_mut(&id) else {
            return;
        };
        debug_assert!(entry.state.is_none(), "release without claim");
        entry.state = Some(state);
    }

    /// The session key of a live entry (used by workers to rebuild the
    /// board for lazy session construction).
    pub(crate) fn key_of(&self, id: EntryId) -> SessionKey {
        self.entries[&id].key
    }

    /// Whether `id` names a live entry.
    pub(crate) fn contains(&self, id: EntryId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Whether a worker currently holds the entry's state.
    pub(crate) fn is_claimed(&self, id: EntryId) -> bool {
        self.entries[&id].state.is_none()
    }

    /// Drop every pin.  Only for the server's drain/shutdown sweeps, after
    /// all queued jobs have been failed — the pin counts they backed are
    /// meaningless at that point.
    pub(crate) fn clear_pins(&mut self) {
        for entry in self.entries.values_mut() {
            entry.pins = 0;
        }
    }

    /// Structural consistency check: the entry map and the key index
    /// describe the same set of entries, with matching keys and no
    /// dangling or duplicated ids.  The chaos harness runs this after a
    /// fault-heavy soak to assert the cache stayed coherent through
    /// quarantines, forced evictions and worker restarts.
    pub fn validate(&self) -> Result<(), String> {
        for (id, entry) in &self.entries {
            match self.index.get(&entry.key) {
                None => return Err(format!("entry {id:?} missing from the key index")),
                Some(ids) if !ids.contains(id) => {
                    return Err(format!("entry {id:?} not listed under its key"));
                }
                Some(_) => {}
            }
        }
        let mut indexed = 0usize;
        for (key, ids) in &self.index {
            if ids.is_empty() {
                return Err(format!("empty index bucket for {key:?}"));
            }
            for id in ids {
                indexed += 1;
                match self.entries.get(id) {
                    None => return Err(format!("index lists dead entry {id:?}")),
                    Some(entry) if entry.key != *key => {
                        return Err(format!("entry {id:?} indexed under the wrong key"));
                    }
                    Some(_) => {}
                }
            }
        }
        if indexed != self.entries.len() {
            return Err(format!(
                "index covers {indexed} entries, map holds {}",
                self.entries.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashram_minicc::{compile_program, OptLevel, SourceUnit};

    fn program(ret: i32) -> Arc<MachineProgram> {
        let src = format!("int main() {{ return {ret}; }}");
        Arc::new(compile_program(&[SourceUnit::application(&src)], OptLevel::O1).unwrap())
    }

    fn key(fingerprint: u64) -> SessionKey {
        SessionKey {
            fingerprint,
            device: "stm32f100",
            scope: PlacementScope::default(),
        }
    }

    #[test]
    fn lookup_hits_only_on_identical_contents() {
        let mut cache = SessionCache::new(4);
        let a = program(1);
        let b = program(2);
        let (ia, hit_a) = cache.lookup_or_insert(key(7), &a);
        assert!(!hit_a);
        // Same fingerprint, different program: a collision, not a hit.
        let (ib, hit_b) = cache.lookup_or_insert(key(7), &b);
        assert!(!hit_b);
        assert_ne!(ia, ib);
        assert_eq!(cache.stats().collisions, 1);
        // A clone of the same contents (different Arc) still hits.
        let a2 = Arc::new((*a).clone());
        let (ia2, hit_a2) = cache.lookup_or_insert(key(7), &a2);
        assert!(hit_a2);
        assert_eq!(ia, ia2);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_unpinned_entry() {
        let mut cache = SessionCache::new(2);
        let (i1, _) = cache.lookup_or_insert(key(1), &program(1));
        let (i2, _) = cache.lookup_or_insert(key(2), &program(2));
        // Touch entry 1 so entry 2 is the LRU victim.
        cache.lookup_or_insert(key(1), &program(1));
        let (_, _) = cache.lookup_or_insert(key(3), &program(3));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.entries.contains_key(&i1), "recently used survives");
        assert!(!cache.entries.contains_key(&i2), "LRU entry evicted");
    }

    #[test]
    fn pinned_and_claimed_entries_are_never_evicted() {
        let mut cache = SessionCache::new(1);
        let (i1, _) = cache.lookup_or_insert(key(1), &program(1));
        cache.pin(i1);
        let (i2, _) = cache.lookup_or_insert(key(2), &program(2));
        assert_eq!(cache.stats().evictions, 0, "pinned entry survives");
        assert_eq!(cache.len(), 2, "cache grows past capacity instead");
        cache.unpin(i1, 1);
        // i2 claimed (state checked out): the next insert must evict i1.
        assert!(cache.claim(i2).is_some());
        assert!(cache.claim(i2).is_none(), "double claim is refused");
        let (_, _) = cache.lookup_or_insert(key(3), &program(3));
        assert!(!cache.entries.contains_key(&i1));
        assert!(cache.entries.contains_key(&i2));
    }

    #[test]
    fn quarantine_removes_even_claimed_pinned_entries_and_stays_coherent() {
        let mut cache = SessionCache::new(4);
        let prog = program(1);
        let (id, _) = cache.lookup_or_insert(key(7), &prog);
        cache.pin(id);
        let (_, state) = cache.claim(id).expect("claimable");
        let (k, p) = cache.quarantine(id).expect("quarantined");
        assert_eq!(k, key(7));
        assert_eq!(*p, *prog);
        assert_eq!(cache.stats().quarantined, 1);
        assert!(!cache.contains(id));
        assert!(cache.quarantine(id).is_none(), "idempotent on dead ids");
        // A release racing the quarantine drops the stale state silently.
        cache.release(id, state);
        assert!(!cache.contains(id));
        // The rebuild gets a fresh entry under the same key.
        let (id2, hit) = cache.lookup_or_insert(k, &p);
        assert!(!hit, "the quarantined session is gone for good");
        assert_ne!(id, id2);
        cache
            .validate()
            .expect("coherent after quarantine + rebuild");
    }

    #[test]
    fn validate_catches_index_corruption() {
        let mut cache = SessionCache::new(4);
        let (id, _) = cache.lookup_or_insert(key(1), &program(1));
        cache.validate().expect("fresh cache is coherent");
        cache.index.clear();
        assert!(cache.validate().is_err(), "dangling entry detected");
        cache.entries.remove(&id);
        cache.validate().expect("empty cache is coherent again");
    }
}
