//! The service request/response vocabulary.
//!
//! A [`Request`] names a registered program, a device from the database, a
//! placement scope and one [`Query`]; the server answers with a
//! [`Response`] whose [`Outcome`] says how the answer was produced.  The
//! types here are deliberately plain data — everything timing- or
//! concurrency-dependent lives in [`crate::server`].

use std::time::Duration;

use flashram_core::{PlacementScope, SweepPoint};
use flashram_ilp::SolveError;

/// What the client wants solved against one session's placement model.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// One `(R_spare, X_limit)` placement.
    Point {
        /// RAM budget in bytes.
        r_spare: u32,
        /// Maximum execution-time growth factor.
        x_limit: f64,
    },
    /// A budget sweep under one time bound, solved as a single chained
    /// [`solve_chained`](flashram_ilp::BranchBound::solve_chained) run in
    /// the order given.
    Sweep {
        /// The RAM budgets, solved in this order (chained).
        budgets: Vec<u32>,
        /// Maximum execution-time growth factor shared by every budget.
        x_limit: f64,
    },
    /// The exact Pareto staircase up to `max_budget` (see
    /// [`PlacementSession::enumerate_frontier`](flashram_core::PlacementSession::enumerate_frontier)).
    Frontier {
        /// Maximum execution-time growth factor.
        x_limit: f64,
        /// Largest RAM budget to descend from.
        max_budget: u32,
    },
}

impl Query {
    /// The memoization key: a hash-/equality-stable canonical form of the
    /// query (`f64` bounds are keyed by their bit pattern, which is exact
    /// because responses are pure functions of the request — see the module
    /// docs of [`crate::server`]).
    pub(crate) fn memo_key(&self) -> QueryKey {
        match self {
            Query::Point { r_spare, x_limit } => QueryKey::Point {
                r_spare: *r_spare,
                x_bits: x_limit.to_bits(),
            },
            Query::Sweep { budgets, x_limit } => QueryKey::Sweep {
                budgets: budgets.clone(),
                x_bits: x_limit.to_bits(),
            },
            Query::Frontier {
                x_limit,
                max_budget,
            } => QueryKey::Frontier {
                x_bits: x_limit.to_bits(),
                max_budget: *max_budget,
            },
        }
    }
}

/// Canonical, hashable form of a [`Query`] (see [`Query::memo_key`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum QueryKey {
    Point { r_spare: u32, x_bits: u64 },
    Sweep { budgets: Vec<u32>, x_bits: u64 },
    Frontier { x_bits: u64, max_budget: u32 },
}

/// One placement request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Name of a program previously registered with
    /// [`PlacementServer::register_program`](crate::PlacementServer::register_program).
    pub program: String,
    /// Device database key (e.g. `"stm32f100"`).
    pub device: String,
    /// Which blocks the placement may move.
    pub scope: PlacementScope,
    /// What to solve.
    pub query: Query,
    /// Wall-clock budget for this request, measured from admission.  When
    /// it expires mid-solve the server degrades to the best answer it can
    /// still produce (incumbent or greedy) and tags the response
    /// [`Outcome::Timeout`].  `None` falls back to the server's
    /// configured default deadline (which may also be `None`: no limit).
    pub deadline: Option<Duration>,
}

impl Request {
    /// A deadline-free point request (the common case in tests).
    pub fn point(program: &str, device: &str, r_spare: u32, x_limit: f64) -> Request {
        Request {
            program: program.to_string(),
            device: device.to_string(),
            scope: PlacementScope::default(),
            query: Query::Point { r_spare, x_limit },
            deadline: None,
        }
    }
}

/// How a [`Response`] was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every point was solved to proven ILP optimality.
    Exact,
    /// Some point is a best-effort answer for a **deterministic** reason
    /// (node-budget exhaustion → incumbent or greedy fallback).  Responses
    /// with this tag are still pure functions of the request and are
    /// memoized.
    Heuristic,
    /// The request's wall-clock deadline expired mid-solve and the answer
    /// was degraded (incumbent or greedy fallback).  Timing-dependent, so
    /// never memoized: re-submitting may produce a better answer.
    Timeout,
}

impl Outcome {
    /// The lowercase tag used in logs and `BENCH_serve.json`.
    pub fn tag(&self) -> &'static str {
        match self {
            Outcome::Exact => "exact",
            Outcome::Heuristic => "heuristic",
            Outcome::Timeout => "timeout",
        }
    }
}

/// A successfully answered request.
#[derive(Debug, Clone)]
pub struct Response {
    /// How the answer was produced (worst point wins: one timed-out point
    /// tags the whole response [`Outcome::Timeout`]).
    pub outcome: Outcome,
    /// The solved points: one for [`Query::Point`], one per budget for
    /// [`Query::Sweep`] (in request order), the ascending staircase for
    /// [`Query::Frontier`] (a degraded frontier collapses to its single
    /// best-effort point).
    pub points: Vec<SweepPoint>,
    /// Whether the session cache already held this `(program contents,
    /// device, scope)` model (no rebuild was needed).
    pub session_hit: bool,
    /// Whether the exact query was answered from the session's memo table
    /// without re-solving.
    pub memo_hit: bool,
    /// Time from admission to the start of solving, in milliseconds.
    pub queue_ms: f64,
    /// Time spent solving (0 for memo hits), in milliseconds.
    pub solve_ms: f64,
    /// Whether a deterministic fault-injection failpoint (the
    /// `fault-injection` cargo feature) perturbed this answer — e.g. a
    /// spurious budget exhaustion degraded it to the greedy fallback.
    /// Always `false` in normal builds.  Injected answers are never
    /// memoized and the chaos harness excludes them from bit-identity
    /// checks against the fault-free oracle.
    pub injected: bool,
}

/// Why a request failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request named a program no [`register_program`]
    /// (`PlacementServer::register_program`) call has registered.
    ///
    /// [`register_program`]: crate::PlacementServer::register_program
    UnknownProgram(String),
    /// The request named a device key absent from the device database.
    UnknownDevice(String),
    /// The admission queue is full and the request was submitted with
    /// [`try_submit`](crate::PlacementServer::try_submit) (the blocking
    /// [`submit`](crate::PlacementServer::submit) waits instead).
    Overloaded,
    /// The server is shutting down — or has drained after an unrecoverable
    /// internal failure — and accepts no new work.  Pending tickets are
    /// failed with this error rather than leaked.
    Shutdown,
    /// The program does not fit the device's memories even before
    /// optimization.
    DoesNotFit(String),
    /// The solver failed for a non-degradable reason (an infeasible time
    /// bound surfaces as `Solver(SolveError::Infeasible)`).
    Solver(SolveError),
    /// A panic escaped the solver while this request (or another request in
    /// the same coalesced batch) was being answered.  The worker contained
    /// the panic, quarantined the possibly half-mutated session, and kept
    /// serving; re-submitting the request is safe and — because responses
    /// are pure functions of the request — yields the exact answer.  Also
    /// used by the watchdog for the in-flight jobs of a worker presumed
    /// wedged.
    SolverPanicked {
        /// The panic payload (or the watchdog's diagnosis).
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownProgram(name) => write!(f, "unknown program {name:?}"),
            ServeError::UnknownDevice(key) => write!(f, "unknown device {key:?}"),
            ServeError::Overloaded => write!(f, "admission queue full"),
            ServeError::Shutdown => write!(f, "server is shutting down"),
            ServeError::DoesNotFit(why) => write!(f, "{why}"),
            ServeError::Solver(e) => write!(f, "placement solver failed: {e}"),
            ServeError::SolverPanicked { message } => {
                write!(f, "placement solver panicked (contained): {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SolveError> for ServeError {
    fn from(e: SolveError) -> ServeError {
        ServeError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memo_keys_distinguish_query_shapes() {
        let point = Query::Point {
            r_spare: 64,
            x_limit: 1.5,
        };
        let sweep = Query::Sweep {
            budgets: vec![64],
            x_limit: 1.5,
        };
        assert_ne!(point.memo_key(), sweep.memo_key());
        assert_eq!(point.memo_key(), point.memo_key());
    }

    #[test]
    fn memo_keys_are_bit_exact_on_the_time_bound() {
        let a = Query::Point {
            r_spare: 64,
            x_limit: 1.5,
        };
        let b = Query::Point {
            r_spare: 64,
            x_limit: 1.5 + f64::EPSILON,
        };
        assert_ne!(a.memo_key(), b.memo_key());
    }

    #[test]
    fn outcome_tags_are_the_bench_vocabulary() {
        assert_eq!(Outcome::Exact.tag(), "exact");
        assert_eq!(Outcome::Heuristic.tag(), "heuristic");
        assert_eq!(Outcome::Timeout.tag(), "timeout");
    }
}
