//! Placement-as-a-service: a concurrent optimization server over
//! [`PlacementSession`](flashram_core::PlacementSession).
//!
//! The paper's tool answers one query — "place these blocks for this
//! budget".  This crate is the production-shaped front end around it: a
//! long-running multi-threaded [`PlacementServer`] with
//!
//! * a [`SessionCache`] keyed by `(program contents, device, scope)` with
//!   LRU eviction, so repeat queries share one model build and memo table;
//! * a bounded admission queue that coalesces queued queries for the same
//!   session into one worker batch and shards independent sessions across
//!   the worker pool (the work-stealing point for the very uneven 0.1 ms –
//!   1.3 s per-point solve costs);
//! * per-request deadlines with backpressure and degradation to the greedy
//!   fallback, responses tagged [`Outcome::Exact`] /
//!   [`Outcome::Heuristic`] / [`Outcome::Timeout`];
//! * a deterministic design making every response a pure function of the
//!   request — see the [`server`] module docs for why concurrent results
//!   are provably bit-identical to sequential ones.
//!
//! Two binaries ship with the crate: `serve`, a line-oriented REPL over
//! the preregistered BEEBS kernels, and `stress`, the seeded workload
//! driver that writes `BENCH_serve.json` (see [`workload`]).
//!
//! Failures are contained, not propagated: worker panics become
//! [`ServeError::SolverPanicked`] responses with the touched cache entry
//! quarantined, poisoned locks are repaired or drained with zero leaked
//! tickets, and an optional watchdog respawns wedged workers.  The
//! `fault-injection` cargo feature compiles deterministic failpoints
//! through the whole solver stack and a `--chaos` mode into `stress` —
//! see the [`server`] module docs' *Fault containment* section.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod request;
pub mod server;
pub mod workload;

pub use cache::{CacheStats, SessionCache, SessionKey};
#[cfg(feature = "fault-injection")]
pub use flashram_ilp::fault::{FaultPlan, FaultSite};
pub use request::{Outcome, Query, Request, Response, ServeError};
pub use server::{PlacementServer, ServerConfig, ServerStats, Ticket};
pub use workload::{
    run_stress, stress_report_json, ChaosConfig, ChaosReport, StressConfig, StressReport,
    WorkloadShape,
};
